//! The iteration driver.

use std::sync::Arc;
use std::time::Instant;

use knn_cluster::{cluster_profiles, cluster_seeded_graph, ClusterAssignment};
use knn_graph::{EdgeAdditions, KnnGraph, Neighbor, UserId};
use knn_sim::{Profile, ProfileDelta, ProfileStore};
use knn_store::backend::{
    read_meta, read_pairs, read_scored_pairs, read_user_lists, write_meta, write_pairs,
    write_scored_pairs,
};
use knn_store::commit::{read_commit_state, write_commit, CommitState};
use knn_store::{
    CommitRecord, CommitTarget, CommitTxn, DiskBackend, IoSnapshot, MemBackend, RecoveryReport,
    RetryBackend, RetryPolicy, StorageBackend, StreamId, WorkingDir,
};

use crate::config::EngineConfig;
use crate::metrics::{ConvergenceOutcome, IterationReport};
use crate::partition::{objective, ClusterPartitioner, Partitioner, PartitionerKind, Partitioning};
use crate::phase1;
use crate::phase2;
use crate::phase4::{self, Phase4Options, Phase4Prune};
use crate::phase5::UpdateQueue;
use crate::traversal::simulate_schedule_ops;
use crate::EngineError;

// Metadata keys of the `Meta` stream.
const META_ITERATION: u32 = 1;
const META_NUM_USERS: u32 = 2;
const META_K: u32 = 3;
const META_NUM_PARTITIONS: u32 = 4;
const META_SEED: u32 = 5;
// Written only when the clustering pre-pass ran (so non-cluster runs
// keep the historical five-key metadata byte-for-byte).
const META_NUM_CLUSTERS: u32 = 6;
const META_CLUSTER_METHOD: u32 = 7;

/// The out-of-core KNN engine: owns a [`StorageBackend`], the current
/// KNN graph `G(t)`, and the update queue, and executes the five-phase
/// iteration loop.
///
/// Memory footprint with a [`DiskBackend`]: `G(t)` (`n × K` scored
/// edges) plus at most `cache_slots` partitions of profile/accumulator
/// state — the profile set itself lives on disk, exactly as in the
/// paper. With a [`MemBackend`] the same loop runs against RAM-resident
/// byte buffers: identical results, no filesystem in the hot path. See
/// the crate docs for a full example.
pub struct KnnEngine {
    config: EngineConfig,
    backend: Arc<dyn StorageBackend>,
    graph: KnnGraph,
    partitioning: Partitioning,
    queue: UpdateQueue,
    iteration: u64,
    reports: Vec<IterationReport>,
    /// The clustering pre-pass output, present iff
    /// [`EngineConfig::clustering_enabled`]; consumed by the cluster
    /// partitioner on every (re)partition and persisted for resume.
    clusters: Option<Arc<ClusterAssignment>>,
    /// Cross-iteration bookkeeping for phase-4 pair suppression;
    /// `None` when no prior iteration ran in this process (fresh
    /// engine, resume) or suppression is disabled — the next
    /// iteration then re-scores everything.
    prune: Option<PruneState>,
    /// Phase-2 override (see [`Phase2Provider`]); `None` runs the
    /// built-in single-backend pipeline.
    phase2_provider: Option<Box<dyn Phase2Provider>>,
    /// I/O meter override for the per-phase report brackets; `None`
    /// reads this engine's backend stats. A sharded driver installs a
    /// closure summing its shard meters so phase I/O deltas cover
    /// every backend the iteration touched.
    io_meter: Option<Arc<dyn Fn() -> IoSnapshot + Send + Sync>>,
    /// What crash recovery found when this engine was resumed with the
    /// commit protocol on; `None` for fresh engines and protocol-off
    /// resumes.
    recovery: Option<RecoveryReport>,
}

/// Pluggable phase-2 implementation. The engine driver calls this in
/// place of [`phase2::generate_tuples`] when installed via
/// [`KnnEngine::set_phase2_provider`] — the hook a sharded driver uses
/// to scan partitions on per-shard backends, exchange foreign buckets,
/// and merge at each bucket's owner, while phases 1/3/4/5 run
/// unchanged against the routing backend.
///
/// Implementations own their storage handles (the engine passes no
/// backend) and must uphold the determinism contract: for a given
/// partitioning and edge streams, the persisted tuple buckets and the
/// returned [`Phase2Output`](phase2::Phase2Output) must equal what the
/// built-in pipeline would produce.
pub trait Phase2Provider: Send {
    /// Runs phase 2 for the current iteration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure, like
    /// [`phase2::generate_tuples`].
    fn generate_tuples(
        &mut self,
        partitioning: &Partitioning,
        options: &phase2::Phase2Options,
        additions: Option<&EdgeAdditions>,
    ) -> Result<phase2::Phase2Output, EngineError>;
}

/// Outcome of [`KnnEngine::verify`]: how many invariants were checked
/// and every violation found, in check order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// Invariant checks performed (streams and cross-stream checks).
    pub streams_checked: u64,
    /// Human-readable findings; empty for a healthy store.
    pub issues: Vec<String>,
}

impl ScrubReport {
    /// `true` when every check passed.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scrub: {} checks, {} issue(s)",
            self.streams_checked,
            self.issues.len()
        )?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

/// What phase-4 suppression needs to know about the previous
/// iteration, maintained by [`KnnEngine::run_iteration`]:
struct PruneState {
    /// Users whose profile changed in the last phase 5 — every score
    /// involving them is stale.
    profile_dirty: Vec<bool>,
    /// Edges of `G(t)` absent from `G(t-1)` — a tuple generated only
    /// through such an edge was never evaluated before.
    additions: EdgeAdditions,
}

impl std::fmt::Debug for KnnEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnnEngine")
            .field("iteration", &self.iteration)
            .field("num_users", &self.config.num_users())
            .field("k", &self.config.k())
            .field("num_partitions", &self.config.num_partitions())
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl KnnEngine {
    /// Creates a disk-backed engine with the random initial graph
    /// `G(0)` (NN-Descent-style: `K` random neighbors per user, derived
    /// from `config.seed()`).
    ///
    /// `profiles` is consumed: it is sharded into per-partition streams
    /// of the backend and dropped — from here on the profile set lives
    /// in storage. Convenience for
    /// [`new_on`](KnnEngine::new_on)`(config, profiles, DiskBackend::new(workdir))`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputMismatch`] if `profiles` does not
    /// cover exactly `config.num_users()` users, or a storage error.
    pub fn new(
        config: EngineConfig,
        profiles: ProfileStore,
        workdir: WorkingDir,
    ) -> Result<Self, EngineError> {
        Self::new_on(config, profiles, Arc::new(DiskBackend::new(workdir)))
    }

    /// Creates an engine on an arbitrary storage backend with the
    /// random initial graph `G(0)`.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::new`].
    pub fn new_on(
        config: EngineConfig,
        profiles: ProfileStore,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, EngineError> {
        let clusters = Self::compute_clusters(&config, &profiles)?;
        let initial = Self::initial_graph_with(&config, clusters.as_deref());
        Self::build_on(config, initial, profiles, clusters, backend)
    }

    /// Runs the clustering pre-pass when the configuration asks for one
    /// ([`EngineConfig::clustering_enabled`]), else `None`.
    fn compute_clusters(
        config: &EngineConfig,
        profiles: &ProfileStore,
    ) -> Result<Option<Arc<ClusterAssignment>>, EngineError> {
        if !config.clustering_enabled() {
            return Ok(None);
        }
        let assignment = cluster_profiles(
            profiles,
            config.cluster_method(),
            config.effective_num_clusters(),
            config.seed(),
        )?;
        Ok(Some(Arc::new(assignment)))
    }

    /// The initial graph `G(0)` for a config plus an optional cluster
    /// assignment: cluster-seeded when
    /// [`cluster_init`](EngineConfig::cluster_init) is on, else the
    /// classic uniform-random NN-Descent start.
    fn initial_graph_with(config: &EngineConfig, clusters: Option<&ClusterAssignment>) -> KnnGraph {
        match clusters {
            Some(assignment) if config.cluster_init() => {
                cluster_seeded_graph(assignment, config.k(), config.seed())
            }
            _ => KnnGraph::random_init(config.num_users(), config.k(), config.seed()),
        }
    }

    /// Computes the initial graph `G(0)` a fresh engine would start
    /// from: cluster-seeded when the config enables
    /// [`cluster_init`](EngineConfig::cluster_init) (running the
    /// clustering pre-pass), uniform random otherwise. Used by drivers
    /// (the sharded engine) that construct the engine through
    /// [`with_initial_graph_on`](KnnEngine::with_initial_graph_on).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if the configured cluster count
    /// is invalid for `profiles`.
    pub fn initial_graph(
        config: &EngineConfig,
        profiles: &ProfileStore,
    ) -> Result<KnnGraph, EngineError> {
        let clusters = Self::compute_clusters(config, profiles)?;
        Ok(Self::initial_graph_with(config, clusters.as_deref()))
    }

    /// The partitioner instance for this engine: graph partitioners
    /// from the bare kind + seed; [`PartitionerKind::Cluster`] bound to
    /// the pre-pass assignment.
    fn make_partitioner(
        config: &EngineConfig,
        clusters: Option<&Arc<ClusterAssignment>>,
    ) -> Result<Box<dyn Partitioner>, EngineError> {
        if config.partitioner() == PartitionerKind::Cluster {
            let clusters = clusters.ok_or_else(|| {
                EngineError::config(
                    "PartitionerKind::Cluster requires the clustering pre-pass output \
                     (engine invariant violated)",
                )
            })?;
            Ok(Box::new(ClusterPartitioner::new(Arc::clone(clusters))))
        } else {
            Ok(config.partitioner().instantiate(config.seed()))
        }
    }

    /// Creates a fully in-memory engine ([`MemBackend`]) with the
    /// random initial graph `G(0)` — the fast path when the profile
    /// set fits in RAM. Same algorithm, same codec, same results as
    /// the disk engine.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::new`].
    pub fn in_memory(config: EngineConfig, profiles: ProfileStore) -> Result<Self, EngineError> {
        Self::new_on(config, profiles, Arc::new(MemBackend::new()))
    }

    /// Creates a disk-backed engine from an explicit initial graph
    /// (e.g. a warm start from a previous run).
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::new`], plus a mismatch error if the graph's
    /// vertex count or `K` bound disagrees with the configuration.
    pub fn with_initial_graph(
        config: EngineConfig,
        graph: KnnGraph,
        profiles: ProfileStore,
        workdir: WorkingDir,
    ) -> Result<Self, EngineError> {
        Self::with_initial_graph_on(config, graph, profiles, Arc::new(DiskBackend::new(workdir)))
    }

    /// Creates an engine from an explicit initial graph on an
    /// arbitrary storage backend.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::with_initial_graph`].
    pub fn with_initial_graph_on(
        config: EngineConfig,
        graph: KnnGraph,
        profiles: ProfileStore,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, EngineError> {
        let clusters = Self::compute_clusters(&config, &profiles)?;
        Self::build_on(config, graph, profiles, clusters, backend)
    }

    /// The shared constructor core: validates inputs, lays out the
    /// initial partitioning (cluster-aware when a pre-pass ran), shards
    /// the profiles, and persists the resumable state.
    fn build_on(
        config: EngineConfig,
        graph: KnnGraph,
        profiles: ProfileStore,
        clusters: Option<Arc<ClusterAssignment>>,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, EngineError> {
        // Every engine I/O path runs behind the bounded retry policy:
        // transient storage failures are absorbed deterministically
        // (seeded jitter), permanent ones propagate unchanged, and a
        // clean run is byte- and meter-identical to an unwrapped one.
        let backend: Arc<dyn StorageBackend> = Arc::new(RetryBackend::new(
            backend,
            RetryPolicy::from_seed(config.seed()),
        ));
        if graph.num_vertices() != config.num_users() {
            return Err(EngineError::input(format!(
                "graph has {} vertices, config expects {}",
                graph.num_vertices(),
                config.num_users()
            )));
        }
        if graph.k() != config.k() {
            return Err(EngineError::input(format!(
                "graph K={} but config K={}",
                graph.k(),
                config.k()
            )));
        }
        if profiles.num_users() != config.num_users() {
            return Err(EngineError::input(format!(
                "profile store has {} users, config expects {}",
                profiles.num_users(),
                config.num_users()
            )));
        }
        // Initial layout: partition G(0) with the configured
        // partitioner and shard the profiles accordingly.
        let partitioner = Self::make_partitioner(&config, clusters.as_ref())?;
        let partitioning = partitioner.partition(&graph.to_digraph(), config.num_partitions())?;
        phase1::reshard_profiles(
            backend.as_ref(),
            None,
            &partitioning,
            Some(&profiles),
            config.threads(),
        )?;
        // The cluster table never changes after the pre-pass: persist
        // it once here, not in per-iteration persist_state.
        if let Some(assignment) = &clusters {
            assignment.persist(backend.as_ref())?;
        }
        let queue = UpdateQueue::new(config.num_users());
        let engine = KnnEngine {
            config,
            backend,
            graph,
            partitioning,
            queue,
            iteration: 0,
            reports: Vec::new(),
            clusters,
            prune: None,
            phase2_provider: None,
            io_meter: None,
            recovery: None,
        };
        engine.persist_state(None)?;
        // Generation 0 is committed the moment the initial state is
        // durable, so a crash during iteration 0 rolls back here.
        if engine.config.commit_protocol() {
            write_commit(engine.backend.as_ref(), &CommitRecord::clean(0))?;
        }
        Ok(engine)
    }

    /// Reopens a disk-backed engine from a working directory previously
    /// populated by [`KnnEngine::new`] / [`KnnEngine::with_initial_graph`]
    /// — including directories written before the [`StorageBackend`]
    /// abstraction existed (the disk format is unchanged).
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::resume_on`].
    pub fn resume(config: EngineConfig, workdir: WorkingDir) -> Result<Self, EngineError> {
        Self::resume_on(config, Arc::new(DiskBackend::new(workdir)))
    }

    /// Reopens an engine from a backend previously populated by one of
    /// the constructors: the persisted KNN graph, partition assignment,
    /// profiles, and any still-queued updates are all recovered, and
    /// the iteration counter continues where the previous run stopped.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InputMismatch`] if the stored metadata
    /// disagrees with `config` (different `n`, `K`, `m`, or seed) or a
    /// stored KNN slice is inconsistent (a user listed twice, or more
    /// than `K` neighbors for one user), and storage errors for missing
    /// or corrupt state streams.
    pub fn resume_on(
        config: EngineConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, EngineError> {
        let backend: Arc<dyn StorageBackend> = Arc::new(RetryBackend::new(
            backend,
            RetryPolicy::from_seed(config.seed()),
        ));
        // Crash recovery runs before a single byte of state is
        // trusted: a torn iteration rolls back to the last committed
        // generation, an interrupted log truncation is finished, torn
        // log tails are pruned, and orphaned scratch is deleted. A
        // legacy layout (no commit record) passes through untouched.
        let recovery = if config.commit_protocol() {
            Some(knn_store::recover(backend.as_ref())?)
        } else {
            None
        };
        let meta: std::collections::HashMap<u32, u64> =
            read_meta(backend.as_ref())?.into_iter().collect();
        let expect = |key: u32, name: &str, want: u64| -> Result<(), EngineError> {
            match meta.get(&key) {
                Some(&found) if found == want => Ok(()),
                Some(&found) => Err(EngineError::input(format!(
                    "stored {name} is {found}, config says {want}"
                ))),
                None => Err(EngineError::input(format!("metadata missing {name}"))),
            }
        };
        expect(META_NUM_USERS, "num_users", config.num_users() as u64)?;
        expect(META_K, "k", config.k() as u64)?;
        expect(
            META_NUM_PARTITIONS,
            "num_partitions",
            config.num_partitions() as u64,
        )?;
        expect(META_SEED, "seed", config.seed())?;
        let clusters = if config.clustering_enabled() {
            expect(
                META_NUM_CLUSTERS,
                "num_clusters",
                config.effective_num_clusters() as u64,
            )?;
            expect(
                META_CLUSTER_METHOD,
                "cluster_method",
                config.cluster_method().code(),
            )?;
            Some(Arc::new(ClusterAssignment::load(
                backend.as_ref(),
                config.num_users(),
                config.effective_num_clusters() as u32,
            )?))
        } else {
            None
        };
        let iteration = *meta
            .get(&META_ITERATION)
            .ok_or_else(|| EngineError::input("metadata missing iteration"))?;
        // After recovery the commit record and the metadata must name
        // the same generation — a disagreement means the directory was
        // modified outside the protocol.
        if let Some(generation) = recovery.as_ref().and_then(|r| r.committed_generation) {
            if generation != iteration {
                return Err(EngineError::input(format!(
                    "commit record names generation {generation}, \
                     stored metadata says iteration {iteration}"
                )));
            }
        }

        let assignment_rows = read_pairs(backend.as_ref(), StreamId::Assignment)?;
        let mut assignment = vec![0u32; config.num_users()];
        if assignment_rows.len() != config.num_users() {
            return Err(EngineError::input(format!(
                "assignment covers {} users, expected {}",
                assignment_rows.len(),
                config.num_users()
            )));
        }
        for (user, p) in assignment_rows {
            let slot = assignment.get_mut(user as usize).ok_or_else(|| {
                EngineError::input(format!("assignment row for unknown user {user}"))
            })?;
            *slot = p;
        }
        let partitioning = Partitioning::from_assignment(assignment, config.num_partitions())?;

        // Rebuild G(t) from the per-partition KNN slices. Slice rows
        // are untrusted input: a user may appear in at most one run of
        // rows across ALL slices, with at most K neighbors — anything
        // else is a corrupt or tampered slice, rejected loudly rather
        // than silently merged.
        let mut graph = KnnGraph::new(config.num_users(), config.k());
        let mut seen = vec![false; config.num_users()];
        let mut install = |p: u32, user: u32, list: Vec<Neighbor>| -> Result<(), EngineError> {
            let claimed = seen.get_mut(user as usize).ok_or_else(|| {
                EngineError::input(format!(
                    "KNN slice of partition {p} names unknown user {user}"
                ))
            })?;
            if std::mem::replace(claimed, true) {
                return Err(EngineError::input(format!(
                    "KNN slice of partition {p} names user {user} twice"
                )));
            }
            if list.len() > config.k() {
                return Err(EngineError::input(format!(
                    "KNN slice of partition {p} carries {} neighbors for user {user}, K={}",
                    list.len(),
                    config.k()
                )));
            }
            graph.set_neighbors(UserId::new(user), list)?;
            Ok(())
        };
        for p in 0..config.num_partitions() as u32 {
            let rows = read_scored_pairs(backend.as_ref(), StreamId::KnnSlice(p))?;
            let mut current: Option<(u32, Vec<Neighbor>)> = None;
            for (s, d, sim) in rows {
                match &mut current {
                    Some((user, list)) if *user == s => {
                        list.push(Neighbor {
                            id: UserId::new(d),
                            sim,
                        });
                    }
                    _ => {
                        if let Some((user, list)) = current.take() {
                            install(p, user, list)?;
                        }
                        current = Some((
                            s,
                            vec![Neighbor {
                                id: UserId::new(d),
                                sim,
                            }],
                        ));
                    }
                }
            }
            if let Some((user, list)) = current {
                install(p, user, list)?;
            }
        }

        let queue = UpdateQueue::new(config.num_users());
        Ok(KnnEngine {
            config,
            backend,
            graph,
            partitioning,
            queue,
            iteration,
            reports: Vec::new(),
            clusters,
            // A resumed engine has no in-process memory of the last
            // iteration's scoring, so the first iteration re-scores
            // everything (suppression resumes one iteration later).
            prune: None,
            phase2_provider: None,
            io_meter: None,
            recovery,
        })
    }

    /// Writes the resumable state: metadata, the partition assignment,
    /// and the current KNN graph sliced per partition. With a `txn`,
    /// every stream is staged (pre-image backed up) before its
    /// rewrite, so a crash mid-persist rolls back cleanly.
    fn persist_state(&self, mut txn: Option<&mut CommitTxn>) -> Result<(), EngineError> {
        let backend = self.backend.as_ref();
        if let Some(txn) = txn.as_deref_mut() {
            txn.backup(backend, CommitTarget::Meta)?;
            txn.backup(backend, CommitTarget::Assignment)?;
        }
        let mut meta = vec![
            (META_ITERATION, self.iteration),
            (META_NUM_USERS, self.config.num_users() as u64),
            (META_K, self.config.k() as u64),
            (META_NUM_PARTITIONS, self.config.num_partitions() as u64),
            (META_SEED, self.config.seed()),
        ];
        if let Some(clusters) = &self.clusters {
            meta.push((META_NUM_CLUSTERS, clusters.num_clusters() as u64));
            meta.push((META_CLUSTER_METHOD, self.config.cluster_method().code()));
        }
        write_meta(backend, &meta)?;
        let assignment_rows: Vec<(u32, u32)> = self
            .partitioning
            .assignment()
            .iter()
            .enumerate()
            .map(|(u, &p)| (u as u32, p))
            .collect();
        write_pairs(backend, StreamId::Assignment, &assignment_rows)?;
        for p in 0..self.partitioning.num_partitions() as u32 {
            if let Some(txn) = txn.as_deref_mut() {
                txn.backup(backend, CommitTarget::KnnSlice(p))?;
            }
            let mut rows: Vec<(u32, u32, f32)> = Vec::new();
            for &user in self.partitioning.users_of(p) {
                for nb in self.graph.neighbors(user) {
                    rows.push((user.raw(), nb.id.raw(), nb.sim));
                }
            }
            write_scored_pairs(backend, StreamId::KnnSlice(p), &rows)?;
        }
        Ok(())
    }

    /// The current KNN graph `G(t)`.
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current iteration index `t`.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// The current partition layout.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The clustering pre-pass output, when the configuration enabled
    /// one ([`EngineConfig::clustering_enabled`]).
    pub fn clusters(&self) -> Option<&Arc<ClusterAssignment>> {
        self.clusters.as_ref()
    }

    /// Reports of every completed iteration.
    pub fn reports(&self) -> &[IterationReport] {
        &self.reports
    }

    /// What crash recovery found and repaired when this engine was
    /// resumed with [`EngineConfig::commit_protocol`] on; `None` for
    /// fresh engines and protocol-off resumes. A clean shutdown
    /// resumes with a default report (nothing rolled back, nothing
    /// deleted).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Scrubs the persisted state: decodes every committed stream
    /// (CRC-verified by the backend), cross-checks the commit record,
    /// metadata, assignment, profile, and KNN-slice invariants against
    /// the configuration, and strictly decodes the update log. Read
    /// only — call it between iterations.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] only on outright I/O failure;
    /// consistency problems are findings in the returned report, not
    /// errors.
    pub fn verify(&self) -> Result<ScrubReport, EngineError> {
        use knn_store::StoreError;
        let backend = self.backend.as_ref();
        let mut report = ScrubReport::default();
        let check = |ok: bool, finding: String, report: &mut ScrubReport| {
            report.streams_checked += 1;
            if !ok {
                report.issues.push(finding);
            }
        };
        // Decode failures are findings (a scrub exists to surface
        // them); only genuine I/O failure aborts the scrub.
        fn soft<T>(
            result: Result<T, StoreError>,
            what: &str,
            report: &mut ScrubReport,
        ) -> Result<Option<T>, EngineError> {
            report.streams_checked += 1;
            match result {
                Ok(v) => Ok(Some(v)),
                Err(e @ (StoreError::Corrupt { .. } | StoreError::VersionMismatch { .. })) => {
                    report.issues.push(format!("{what}: {e}"));
                    Ok(None)
                }
                Err(e) => Err(e.into()),
            }
        }

        // The commit record, when present, must be intact, clean, and
        // name the current generation. Absent is fine: legacy layout
        // or protocol off.
        match read_commit_state(backend)? {
            CommitState::Absent => {}
            CommitState::Torn => {
                check(false, "commit record is torn".to_string(), &mut report);
            }
            CommitState::Valid(rec) => {
                check(
                    rec.generation == self.iteration,
                    format!(
                        "commit record names generation {}, engine is at iteration {}",
                        rec.generation, self.iteration
                    ),
                    &mut report,
                );
                check(
                    rec.log_consumed_len == 0,
                    format!(
                        "commit record carries {} consumed-log bytes at rest \
                         (truncation never completed)",
                        rec.log_consumed_len
                    ),
                    &mut report,
                );
            }
        }

        // Metadata must agree with the configuration.
        let meta: std::collections::HashMap<u32, u64> =
            soft(read_meta(backend), "metadata stream", &mut report)?
                .unwrap_or_default()
                .into_iter()
                .collect();
        for (key, name, want) in [
            (META_ITERATION, "iteration", self.iteration),
            (META_NUM_USERS, "num_users", self.config.num_users() as u64),
            (META_K, "k", self.config.k() as u64),
            (
                META_NUM_PARTITIONS,
                "num_partitions",
                self.config.num_partitions() as u64,
            ),
            (META_SEED, "seed", self.config.seed()),
        ] {
            check(
                meta.get(&key) == Some(&want),
                format!(
                    "metadata {name} is {:?}, expected {want}",
                    meta.get(&key).copied()
                ),
                &mut report,
            );
        }

        // The assignment must cover exactly the configured users with
        // in-range partitions — and match the in-memory layout.
        let assignment_rows = soft(
            read_pairs(backend, StreamId::Assignment),
            "assignment stream",
            &mut report,
        )?
        .unwrap_or_default();
        let n = self.config.num_users();
        let m = self.config.num_partitions() as u32;
        let mut assignment_ok = assignment_rows.len() == n;
        for &(user, p) in &assignment_rows {
            assignment_ok &= (user as usize) < n
                && p < m
                && self.partitioning.assignment().get(user as usize) == Some(&p);
        }
        check(
            assignment_ok,
            format!(
                "assignment stream disagrees with the engine layout \
                 ({} rows for n={n})",
                assignment_rows.len()
            ),
            &mut report,
        );

        // Every user's profile lives exactly once, in its assigned
        // partition.
        let mut profile_seen = vec![false; n];
        for p in 0..m {
            let Some(rows) = soft(
                read_user_lists(backend, StreamId::Profiles(p)),
                &format!("profile stream of partition {p}"),
                &mut report,
            )?
            else {
                continue;
            };
            let mut ok = true;
            for (user, _) in &rows {
                ok &= (*user as usize) < n
                    && self.partitioning.partition_of(UserId::new(*user)) == p
                    && !std::mem::replace(&mut profile_seen[*user as usize], true);
            }
            check(
                ok,
                format!("profile stream of partition {p} misplaces or repeats a user"),
                &mut report,
            );
        }
        check(
            profile_seen.iter().all(|&s| s),
            format!(
                "{} users have no stored profile",
                profile_seen.iter().filter(|&&s| !s).count()
            ),
            &mut report,
        );

        // KNN slices: each user at most once across all slices, in its
        // assigned partition, with at most K neighbors.
        let mut knn_seen = vec![0usize; n];
        for p in 0..m {
            let Some(rows) = soft(
                read_scored_pairs(backend, StreamId::KnnSlice(p)),
                &format!("KNN slice of partition {p}"),
                &mut report,
            )?
            else {
                continue;
            };
            let mut ok = true;
            for (s, _, _) in &rows {
                ok &= (*s as usize) < n && self.partitioning.partition_of(UserId::new(*s)) == p;
                if let Some(count) = knn_seen.get_mut(*s as usize) {
                    *count += 1;
                    ok &= *count <= self.config.k();
                }
            }
            check(
                ok,
                format!("KNN slice of partition {p} misplaces a user or overflows K"),
                &mut report,
            );
        }

        // The update log must decode strictly (a torn tail at rest is
        // a finding — recovery prunes those on resume).
        check(
            self.queue.pending(backend).is_ok(),
            "update log does not decode cleanly".to_string(),
            &mut report,
        );

        // Between iterations no staged backups, spill runs, or
        // exchange runs should survive — a leftover means an
        // interrupted commit or GC. Bucket streams legitimately rest
        // between iterations, so they are not leftovers.
        let leftovers = backend
            .list()?
            .into_iter()
            .filter(|s| {
                matches!(
                    s,
                    StreamId::Staged(..) | StreamId::TupleRun(..) | StreamId::ExchangeRun(..)
                )
            })
            .count();
        check(
            leftovers == 0,
            format!("{leftovers} staged/scratch streams survive at rest"),
            &mut report,
        );

        Ok(report)
    }

    /// Cumulative I/O counters (metered inside the storage backend),
    /// or whatever the installed [`io meter`](KnnEngine::set_io_meter)
    /// reports.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.io_now()
    }

    /// The I/O counters the per-phase report brackets observe.
    fn io_now(&self) -> IoSnapshot {
        match &self.io_meter {
            Some(meter) => meter(),
            None => self.backend.stats().snapshot(),
        }
    }

    /// Installs (or clears) a [`Phase2Provider`] overriding the
    /// built-in phase-2 pipeline on subsequent iterations.
    pub fn set_phase2_provider(&mut self, provider: Option<Box<dyn Phase2Provider>>) {
        self.phase2_provider = provider;
    }

    /// Installs (or clears) the I/O meter backing
    /// [`io_snapshot`](KnnEngine::io_snapshot) and the per-phase
    /// [`IterationReport`] I/O brackets. Use when iteration I/O lands
    /// on backends other than this engine's own (sharding).
    pub fn set_io_meter(&mut self, meter: Option<Arc<dyn Fn() -> IoSnapshot + Send + Sync>>) {
        self.io_meter = meter;
    }

    /// The storage backend this engine runs on.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The working directory, when the engine is disk-backed; `None`
    /// for in-memory (and future non-directory) backends.
    pub fn working_dir(&self) -> Option<&WorkingDir> {
        self.backend.working_dir()
    }

    /// Consumes the engine, returning its working directory (for
    /// cleanup or inspection).
    ///
    /// # Panics
    ///
    /// Panics if the engine is not disk-backed — use
    /// [`working_dir`](KnnEngine::working_dir) /
    /// [`backend`](KnnEngine::backend) for backend-agnostic access.
    pub fn into_working_dir(self) -> WorkingDir {
        self.backend
            .working_dir()
            .expect("into_working_dir on a non-disk backend")
            .clone()
    }

    /// Queues a profile update; it becomes visible in `P(t+1)` after
    /// the current iteration's phase 5 (the paper's lazy queue `q`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidUpdate`] for out-of-range users or
    /// non-finite weights.
    pub fn queue_update(&mut self, delta: &ProfileDelta) -> Result<(), EngineError> {
        self.queue.queue(delta, self.backend.as_ref())
    }

    /// Reads one user's current stored profile (diagnostic helper).
    ///
    /// # Errors
    ///
    /// Returns a storage error or an unknown-user mismatch.
    pub fn profile_of(&self, user: UserId) -> Result<Profile, EngineError> {
        UpdateQueue::read_profile(user, &self.partitioning, self.backend.as_ref())
    }

    /// Materializes the entire stored profile set `P(t)` as an
    /// in-memory [`ProfileStore`] — the snapshot-extraction hook the
    /// serving layer uses to publish a consistent profile view after
    /// each iteration.
    ///
    /// Must only be called between iterations (the engine does not
    /// rewrite partition streams while no iteration is running); costs
    /// one sequential read of every partition's profile stream.
    ///
    /// # Errors
    ///
    /// Returns a storage error for missing or corrupt partition
    /// streams, or an input-mismatch error if a partition stream names
    /// a user outside the configured range.
    pub fn export_profiles(&self) -> Result<ProfileStore, EngineError> {
        let mut store = ProfileStore::new(self.config.num_users());
        for p in 0..self.partitioning.num_partitions() as u32 {
            let rows = read_user_lists(self.backend.as_ref(), StreamId::Profiles(p))?;
            for (user, row) in rows {
                if user as usize >= self.config.num_users() {
                    return Err(EngineError::input(format!(
                        "partition {p} profile stream names unknown user {user}"
                    )));
                }
                let profile = Profile::from_unsorted_pairs(row).map_err(|e| {
                    EngineError::input(format!("invalid stored profile for user {user}: {e}"))
                })?;
                store.set(UserId::new(user), profile);
            }
        }
        Ok(store)
    }

    /// Number of updates currently queued for phase 5.
    ///
    /// # Errors
    ///
    /// Returns a storage error if the update log cannot be read.
    pub fn pending_updates(&self) -> Result<usize, EngineError> {
        self.queue.pending(self.backend.as_ref())
    }

    /// Executes one full five-phase iteration, advancing `G(t)` to
    /// `G(t+1)` and `P(t)` to `P(t+1)`.
    ///
    /// Phases 1, 2, 4, and 5 run partition-parallel across the
    /// configured [`threads`](EngineConfig::threads) budget. The
    /// resulting graph, every persisted stream, and the deterministic
    /// fields of the [`IterationReport`] (everything except wall-clock
    /// durations) are identical at every thread count and on every
    /// backend — see the crate docs for the guarantee.
    ///
    /// # Errors
    ///
    /// Any phase's storage or validation error aborts the iteration;
    /// the engine's in-memory graph is only replaced on success.
    pub fn run_iteration(&mut self) -> Result<IterationReport, EngineError> {
        let mut durations = [std::time::Duration::ZERO; 5];
        let mut io = [IoSnapshot::default(); 5];
        let backend = Arc::clone(&self.backend);
        let backend = backend.as_ref();
        // The iteration's undo log: committed streams are staged
        // before their first in-place mutation, and the commit record
        // written at the end flips the visible generation atomically —
        // a crash anywhere in between rolls back on resume.
        let mut txn = self
            .config
            .commit_protocol()
            .then(|| CommitTxn::new(self.iteration));

        // Cross-iteration suppression inputs (see the crate docs'
        // scoring-pipeline section). `seed_ok[u]` means u's prior
        // top-K verdict is replayable: u's own profile and every
        // profile in u's current neighbor list unchanged since those
        // scores were computed, and the list fully scored.
        let prune_state = if self.config.prune_pairs() {
            self.prune.as_ref()
        } else {
            None
        };
        let seed_ok: Option<Vec<bool>> = prune_state.map(|st| {
            (0..self.config.num_users())
                .map(|u| {
                    let user = UserId::new(u as u32);
                    !st.profile_dirty[u]
                        && self.graph.fully_scored(user)
                        && self
                            .graph
                            .neighbors(user)
                            .iter()
                            .all(|nb| !st.profile_dirty[nb.id.index()])
                })
                .collect()
        });

        // Phase 1: partition G(t) and lay out edge/profile streams.
        let before = self.io_now();
        let t0 = Instant::now();
        if self.config.repartition_each_iteration() || self.iteration == 0 {
            let partitioner = Self::make_partitioner(&self.config, self.clusters.as_ref())?;
            let next =
                partitioner.partition(&self.graph.to_digraph(), self.config.num_partitions())?;
            if next != self.partitioning {
                // Resharding rewrites every profile stream in place —
                // stage them all first.
                if let Some(txn) = txn.as_mut() {
                    for p in 0..self.partitioning.num_partitions() as u32 {
                        txn.backup(backend, CommitTarget::Profiles(p))?;
                    }
                }
                phase1::reshard_profiles(
                    backend,
                    Some(&self.partitioning),
                    &next,
                    None,
                    self.config.threads(),
                )?;
                self.partitioning = next;
            }
        }
        let phase1_stats = phase1::write_partition_edges(
            &self.graph,
            &self.partitioning,
            backend,
            self.config.threads(),
            seed_ok.as_deref(),
        )?;
        let replication_cost =
            objective::replication_cost(&self.graph.to_digraph(), &self.partitioning);
        durations[0] = t0.elapsed();
        io[0] = self.io_now() - before;

        // Phase 2: tuple generation + dedup into pair buckets (tagged
        // with path age when suppression is active).
        let before = self.io_now();
        let t0 = Instant::now();
        let phase2_options = phase2::Phase2Options {
            spill_threshold: self.config.spill_threshold(),
            tuple_table_memory: self.config.tuple_table_memory(),
            threads: self.config.threads(),
            legacy_pipeline: self.config.legacy_tuple_pipeline(),
        };
        let additions = prune_state.map(|st| &st.additions);
        let phase2_out = match self.phase2_provider.as_mut() {
            Some(provider) => {
                provider.generate_tuples(&self.partitioning, &phase2_options, additions)?
            }
            None => {
                phase2::generate_tuples(&self.partitioning, backend, &phase2_options, additions)?
            }
        };
        durations[1] = t0.elapsed();
        io[1] = self.io_now() - before;
        // Partition locality of this iteration's tuple volume: the
        // diagonal of the PI graph counts tuples whose endpoints share
        // a partition.
        let intra_partition_tuples: u64 = (0..self.partitioning.num_partitions() as u32)
            .map(|p| phase2_out.pi.bucket_weight(p, p))
            .sum();

        // Phase 3: PI-graph traversal schedule.
        let before = self.io_now();
        let t0 = Instant::now();
        let schedule = self.config.heuristic().schedule(&phase2_out.pi);
        let predicted = simulate_schedule_ops(&schedule, self.config.cache_slots());
        durations[2] = t0.elapsed();
        io[2] = self.io_now() - before;

        // Phase 4: out-of-core similarity scoring and top-K harvest.
        let before = self.io_now();
        let t0 = Instant::now();
        let options = Phase4Options {
            k: self.config.k(),
            measure: self.config.measure(),
            threads: self.config.threads(),
            cache_slots: self.config.cache_slots(),
            include_reverse: self.config.include_reverse(),
            parallel_threshold: self.config.parallel_threshold(),
            bound_filter: self.config.bound_filter(),
        };
        let prune_ctx = match (prune_state, &seed_ok) {
            (Some(st), Some(ok)) => Some(Phase4Prune {
                seed_ok: ok,
                profile_dirty: &st.profile_dirty,
            }),
            _ => None,
        };
        let phase4_out = phase4::run_phase4(
            &schedule,
            &phase2_out.pi,
            &phase2_out.tuple_meta,
            &self.partitioning,
            backend,
            &options,
            prune_ctx.as_ref(),
        )?;
        durations[3] = t0.elapsed();
        io[3] = self.io_now() - before;

        // Phase 5: apply the lazy profile-update queue. In commit mode
        // the consumed log bytes come back here and are truncated by
        // the commit step below, not by phase 5.
        let before = self.io_now();
        let t0 = Instant::now();
        let (phase5_stats, updated_users, consumed) = self.queue.apply_all(
            &self.partitioning,
            backend,
            self.config.threads(),
            txn.as_mut(),
        )?;
        durations[4] = t0.elapsed();
        io[4] = self.io_now() - before;

        let changed_fraction = self.graph.edge_change_fraction(&phase4_out.graph);
        // Bookkeeping for the next iteration's suppression, derived
        // before G(t) is replaced: which edges are new, and whose
        // profile just changed.
        self.prune = self.config.prune_pairs().then(|| {
            let additions = phase4_out.graph.additions_since(&self.graph);
            let mut profile_dirty = vec![false; self.config.num_users()];
            for &u in &updated_users {
                profile_dirty[u as usize] = true;
            }
            PruneState {
                profile_dirty,
                additions,
            }
        });
        self.graph = phase4_out.graph;
        self.iteration += 1;
        self.persist_state(txn.as_mut())?;
        if let Some(txn) = txn.take() {
            txn.commit(backend, self.iteration, &consumed)?;
        }

        let report = IterationReport {
            iteration: self.iteration - 1,
            phase_durations: durations,
            phase_io: io,
            cache: phase4_out.cache,
            predicted,
            tuples: phase2_out.stats,
            schedule_len: schedule.len(),
            sims_computed: phase4_out.sims_computed,
            sims_skipped: phase4_out.sims_skipped,
            sims_pruned: phase4_out.sims_pruned,
            accums_seeded: phase1_stats.accums_seeded,
            bytes_spilled: io[1].spill_bytes,
            spill_runs: io[1].spill_runs,
            merge_passes: io[1].merge_passes,
            updates_applied: phase5_stats.updates_applied,
            replication_cost,
            intra_partition_tuples,
            changed_fraction,
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Runs iterations until the edge-change fraction drops below
    /// `threshold` or `max_iterations` is reached.
    ///
    /// # Errors
    ///
    /// Propagates the first iteration error.
    pub fn run_until_converged(
        &mut self,
        threshold: f64,
        max_iterations: usize,
    ) -> Result<ConvergenceOutcome, EngineError> {
        let mut last_change = 1.0f64;
        for i in 0..max_iterations {
            let report = self.run_iteration()?;
            last_change = report.changed_fraction;
            if last_change < threshold {
                return Ok(ConvergenceOutcome {
                    converged: true,
                    iterations_run: i + 1,
                    final_change_fraction: last_change,
                });
            }
        }
        Ok(ConvergenceOutcome {
            converged: false,
            iterations_run: max_iterations,
            final_change_fraction: last_change,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_iteration;
    use knn_sim::generators::{clustered_profiles, ClusteredConfig};
    use knn_sim::Measure;

    fn small_world(n: usize, seed: u64) -> (EngineConfig, ProfileStore, WorkingDir) {
        let (profiles, _) = clustered_profiles(
            ClusteredConfig::new(n, seed)
                .with_clusters(4)
                .with_ratings(12, 2),
        );
        let config = EngineConfig::builder(n)
            .k(4)
            .num_partitions(4)
            .measure(Measure::Cosine)
            .seed(seed)
            .build()
            .unwrap();
        let wd = WorkingDir::temp("engine").unwrap();
        (config, profiles, wd)
    }

    #[test]
    fn one_iteration_matches_reference() {
        let (config, profiles, wd) = small_world(60, 3);
        let g0 = KnnGraph::random_init(60, 4, 3);
        let expected = reference_iteration(&g0, &profiles, &Measure::Cosine, 4, false);
        let mut engine = KnnEngine::with_initial_graph(config, g0, profiles, wd).unwrap();
        engine.run_iteration().unwrap();
        assert_eq!(engine.graph(), &expected);
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn multiple_iterations_match_reference() {
        let (config, profiles, wd) = small_world(40, 5);
        let g0 = KnnGraph::random_init(40, 4, 5);
        let expected =
            crate::reference::reference_run(&g0, &profiles, &Measure::Cosine, 4, false, 3);
        let mut engine = KnnEngine::with_initial_graph(config, g0, profiles, wd).unwrap();
        for _ in 0..3 {
            engine.run_iteration().unwrap();
        }
        assert_eq!(engine.graph(), &expected);
        assert_eq!(engine.iteration(), 3);
        assert_eq!(engine.reports().len(), 3);
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn in_memory_engine_matches_reference() {
        let (config, profiles, wd) = small_world(60, 3);
        wd.destroy().unwrap();
        let g0 = KnnGraph::random_init(60, 4, 3);
        let expected =
            crate::reference::reference_run(&g0, &profiles, &Measure::Cosine, 4, false, 2);
        let mut engine =
            KnnEngine::with_initial_graph_on(config, g0, profiles, Arc::new(MemBackend::new()))
                .unwrap();
        engine.run_iteration().unwrap();
        engine.run_iteration().unwrap();
        assert_eq!(engine.graph(), &expected);
        assert!(engine.working_dir().is_none());
        assert_eq!(engine.backend().name(), "mem");
    }

    #[test]
    fn in_memory_engine_resumes_from_its_backend() {
        let (config, profiles, wd) = small_world(40, 8);
        wd.destroy().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let mut engine = KnnEngine::new_on(config.clone(), profiles, Arc::clone(&backend)).unwrap();
        engine.run_iteration().unwrap();
        let expected = engine.graph().clone();
        drop(engine);
        let resumed = KnnEngine::resume_on(config, backend).unwrap();
        assert_eq!(resumed.iteration(), 1);
        assert_eq!(resumed.graph(), &expected);
    }

    #[test]
    fn predicted_ops_match_real_execution() {
        let (config, profiles, wd) = small_world(50, 7);
        let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
        let report = engine.run_iteration().unwrap();
        assert_eq!(report.cache.loads, report.predicted.loads);
        assert_eq!(report.cache.unloads, report.predicted.unloads);
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn updates_invisible_until_next_iteration() {
        let (config, profiles, wd) = small_world(30, 9);
        let baseline = profiles.clone();
        let g0 = KnnGraph::random_init(30, 4, 9);
        let mut engine = KnnEngine::with_initial_graph(config, g0.clone(), profiles, wd).unwrap();
        // Queue an update mid-iteration-0: iteration 0 must compute
        // with the original profiles.
        engine
            .queue_update(&ProfileDelta::replace(
                UserId::new(0),
                Profile::from_unsorted_pairs(vec![(99999, 5.0)]).unwrap(),
            ))
            .unwrap();
        let expected_iter0 = reference_iteration(&g0, &baseline, &Measure::Cosine, 4, false);
        let report = engine.run_iteration().unwrap();
        assert_eq!(
            engine.graph(),
            &expected_iter0,
            "update leaked into iteration 0"
        );
        assert_eq!(report.updates_applied, 1);
        // After phase 5 the profile is replaced in storage.
        let p = engine.profile_of(UserId::new(0)).unwrap();
        assert_eq!(p.get(knn_sim::ItemId::new(99999)), Some(5.0));
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn export_profiles_round_trips_the_store() {
        let (config, profiles, wd) = small_world(45, 21);
        let original = profiles.clone();
        let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
        // The resharded stored set must reassemble to the input...
        assert_eq!(engine.export_profiles().unwrap(), original);
        // ...and still round-trip after an iteration plus an update.
        engine
            .queue_update(&ProfileDelta::set(
                UserId::new(3),
                knn_sim::ItemId::new(777),
                2.5,
            ))
            .unwrap();
        engine.run_iteration().unwrap();
        let exported = engine.export_profiles().unwrap();
        assert_eq!(
            exported.get(UserId::new(3)).get(knn_sim::ItemId::new(777)),
            Some(2.5)
        );
        assert_eq!(exported.num_users(), 45);
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn convergence_on_clustered_data() {
        let (config, profiles, wd) = small_world(80, 11);
        let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
        let outcome = engine.run_until_converged(0.05, 12).unwrap();
        assert!(outcome.converged, "did not converge: {outcome:?}");
        assert!(outcome.iterations_run >= 2);
        engine.into_working_dir().destroy().unwrap();
    }

    #[test]
    fn constructor_validates_inputs() {
        let (config, profiles, wd) = small_world(30, 1);
        let wrong_graph = KnnGraph::random_init(29, 4, 1);
        assert!(matches!(
            KnnEngine::with_initial_graph(config.clone(), wrong_graph, profiles.clone(), wd),
            Err(EngineError::InputMismatch { .. })
        ));
        let wd = WorkingDir::temp("engine_bad_k").unwrap();
        let wrong_k = KnnGraph::random_init(30, 9, 1);
        assert!(matches!(
            KnnEngine::with_initial_graph(config.clone(), wrong_k, profiles.clone(), wd),
            Err(EngineError::InputMismatch { .. })
        ));
        let wd = WorkingDir::temp("engine_bad_profiles").unwrap();
        let short_profiles = ProfileStore::new(29);
        assert!(matches!(
            KnnEngine::new(config, short_profiles, wd),
            Err(EngineError::InputMismatch { .. })
        ));
    }

    #[test]
    fn repartition_toggle_does_not_change_results() {
        let n = 40;
        let g0 = KnnGraph::random_init(n, 3, 13);
        let mut graphs = Vec::new();
        for repartition in [true, false] {
            let (_, profiles, wd) = small_world(n, 13);
            let config = EngineConfig::builder(n)
                .k(3)
                .num_partitions(5)
                .repartition_each_iteration(repartition)
                .seed(13)
                .build()
                .unwrap();
            let mut engine =
                KnnEngine::with_initial_graph(config, g0.clone(), profiles, wd).unwrap();
            for _ in 0..2 {
                engine.run_iteration().unwrap();
            }
            graphs.push(engine.graph().clone());
            engine.into_working_dir().destroy().unwrap();
        }
        assert_eq!(graphs[0], graphs[1], "layout must not affect results");
    }
}
