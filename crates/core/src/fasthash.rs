//! A deterministic, allocation-free hasher for the engine's hot maps.
//!
//! Phases 2 and 4 perform tens of millions of lookups per iteration in
//! maps keyed by `u32` user ids or `(u32, u32)` tuples. The standard
//! library's default SipHash is DoS-resistant but costs ~10× more than
//! needed for trusted integer keys; this is the classic
//! Fowler/Firefox "Fx" multiply-rotate hash, which the compiler reduces
//! to a handful of ALU ops per key.
//!
//! Determinism note: unlike `RandomState`, this hasher is seed-free,
//! so map iteration order is stable across runs — the engine never
//! relies on map order (every persisted artifact is sorted first), but
//! stability removes a whole class of "works this run" hazards.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher (as used by rustc).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const ROTATE: u32 = 5;
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An [`FxHashMap`] with reserved capacity.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically_across_maps() {
        let mut a: FxHashMap<u32, u32> = FxHashMap::default();
        let mut b: FxHashMap<u32, u32> = map_with_capacity(16);
        for i in 0..1000u32 {
            a.insert(i.wrapping_mul(2654435761), i);
            b.insert(i.wrapping_mul(2654435761), i);
        }
        assert_eq!(a.len(), 1000);
        for (k, v) in &a {
            assert_eq!(b.get(k), Some(v));
        }
    }

    #[test]
    fn tuple_keys_work() {
        let mut m: FxHashMap<(u32, u32), bool> = FxHashMap::default();
        m.insert((1, 2), true);
        m.insert((2, 1), false);
        assert_eq!(m.get(&(1, 2)), Some(&true));
        assert_eq!(m.get(&(2, 1)), Some(&false));
        assert_eq!(m.get(&(2, 2)), None);
    }

    #[test]
    fn iteration_order_is_stable_across_identical_builds() {
        let build = || {
            let mut m: FxHashMap<u32, u32> = FxHashMap::default();
            for i in 0..500u32 {
                m.insert(i * 7919, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
