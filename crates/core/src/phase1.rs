//! Phase 1: KNN-graph partitioning and on-disk layout.
//!
//! Splits `G(t)` into `m` balanced partitions, writes each partition's
//! in-edge and out-edge lists **sorted by the bridge vertex** `v` (so
//! phase 2 can emit all two-hop tuples `s → v → d` with one sequential
//! merge-scan), migrates profile files to the new layout, and resets
//! the per-partition top-K accumulator state.

use std::sync::Arc;

use knn_graph::{KnnGraph, UserId};
use knn_sim::ProfileStore;
use knn_store::record_file::{read_user_lists, write_pairs, write_user_lists};
use knn_store::{IoStats, RecordKind, WorkingDir};

use crate::partition::Partitioning;
use crate::EngineError;

/// Summary of one phase-1 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase1Stats {
    /// Directed edges written into in-edge files.
    pub in_edges_written: u64,
    /// Directed edges written into out-edge files.
    pub out_edges_written: u64,
    /// Profiles migrated between partition files.
    pub profiles_resharded: u64,
}

/// Writes the per-partition edge files of `graph` under `partitioning`.
///
/// For partition `Ri` with users `Vi`:
/// * the **out-edge file** holds rows `(v, d)` for every edge
///   `v → d, v ∈ Vi`, sorted by `(v, d)`;
/// * the **in-edge file** holds rows `(v, s)` for every edge
///   `s → v, v ∈ Vi`, sorted by `(v, s)` — the bridge `v` comes first
///   in both layouts.
///
/// Also resets each partition's accumulator file to the empty state.
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure.
pub fn write_partition_edges(
    graph: &KnnGraph,
    partitioning: &Partitioning,
    workdir: &WorkingDir,
    stats: &Arc<IoStats>,
) -> Result<Phase1Stats, EngineError> {
    let m = partitioning.num_partitions();
    let mut result = Phase1Stats::default();

    // Group edges by the partition that owns each endpoint-as-bridge.
    let mut out_rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
    let mut in_rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
    for (s, nb) in graph.iter_edges() {
        let d = nb.id;
        out_rows[partitioning.partition_of(s) as usize].push((s.raw(), d.raw()));
        in_rows[partitioning.partition_of(d) as usize].push((d.raw(), s.raw()));
    }

    for p in 0..m as u32 {
        let rows = &mut out_rows[p as usize];
        rows.sort_unstable();
        write_pairs(
            &workdir.out_edges_path(p),
            RecordKind::OutEdges,
            rows,
            stats,
        )?;
        result.out_edges_written += rows.len() as u64;

        let rows = &mut in_rows[p as usize];
        rows.sort_unstable();
        write_pairs(&workdir.in_edges_path(p), RecordKind::InEdges, rows, stats)?;
        result.in_edges_written += rows.len() as u64;

        // Fresh (empty) accumulator state for every user of p.
        let accum_rows: Vec<(u32, Vec<(u32, f32)>)> = partitioning
            .users_of(p)
            .iter()
            .map(|u| (u.raw(), Vec::new()))
            .collect();
        write_user_lists(
            &workdir.accum_path(p),
            RecordKind::Accumulators,
            &accum_rows,
            stats,
        )?;
    }

    Ok(result)
}

/// Migrates profile files from `old` partition layout to `new`.
///
/// When `old` is `None` the profiles come from `initial` (engine
/// setup); otherwise each old partition file is read once and its rows
/// are redistributed. Every user must appear exactly once.
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure and
/// [`EngineError::InputMismatch`] if the old layout does not cover
/// exactly the expected users.
pub fn reshard_profiles(
    workdir: &WorkingDir,
    old: Option<&Partitioning>,
    new: &Partitioning,
    initial: Option<&ProfileStore>,
    stats: &Arc<IoStats>,
) -> Result<u64, EngineError> {
    let m = new.num_partitions();
    let n = new.num_users();
    let mut staged: Vec<Vec<knn_store::record_file::UserListRow>> = vec![Vec::new(); m];
    let mut seen = 0u64;

    let mut place = |user: u32, row: Vec<(u32, f32)>| -> Result<(), EngineError> {
        if user as usize >= n {
            return Err(EngineError::input(format!(
                "profile row for user {user} but n={n}"
            )));
        }
        let p = new.partition_of(UserId::new(user));
        staged[p as usize].push((user, row));
        seen += 1;
        Ok(())
    };

    match (old, initial) {
        (Some(old_layout), _) => {
            for p in 0..old_layout.num_partitions() as u32 {
                let rows = read_user_lists(&workdir.profiles_path(p), RecordKind::Profiles, stats)?;
                for (user, row) in rows {
                    place(user, row)?;
                }
            }
        }
        (None, Some(store)) => {
            for (user, profile) in store.iter() {
                let row: Vec<(u32, f32)> = profile.iter().map(|(i, w)| (i.raw(), w)).collect();
                place(user.raw(), row)?;
            }
        }
        (None, None) => {
            return Err(EngineError::input(
                "reshard needs either an old layout or an initial profile store",
            ));
        }
    }

    if seen != n as u64 {
        return Err(EngineError::input(format!(
            "reshard saw {seen} profile rows, expected {n}"
        )));
    }

    for p in 0..m as u32 {
        let rows = &mut staged[p as usize];
        rows.sort_unstable_by_key(|&(u, _)| u);
        write_user_lists(&workdir.profiles_path(p), RecordKind::Profiles, rows, stats)?;
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::Neighbor;
    use knn_store::record_file::read_pairs;

    fn setup(n: usize, m: usize) -> (WorkingDir, Partitioning, Arc<IoStats>) {
        let wd = WorkingDir::temp("phase1").unwrap();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        (wd, p, Arc::new(IoStats::new()))
    }

    fn graph_with_edges(n: usize, k: usize, edges: &[(u32, u32)]) -> KnnGraph {
        let mut g = KnnGraph::new(n, k);
        for &(s, d) in edges {
            g.insert(UserId::new(s), Neighbor::new(UserId::new(d), 0.5));
        }
        g
    }

    #[test]
    fn edge_files_are_sorted_by_bridge() {
        let (wd, p, stats) = setup(6, 2);
        // Edges: 4→0, 2→0, 0→5 (users 0,2,4 in partition 0; 1,3,5 in 1).
        let g = graph_with_edges(6, 3, &[(4, 0), (2, 0), (0, 5)]);
        let st = write_partition_edges(&g, &p, &wd, &stats).unwrap();
        assert_eq!(st.out_edges_written, 3);
        assert_eq!(st.in_edges_written, 3);
        // Partition 0 out-edges: bridges 0,2,4 → rows (0,5),(2,0),(4,0).
        let out0 = read_pairs(&wd.out_edges_path(0), RecordKind::OutEdges, &stats).unwrap();
        assert_eq!(out0, vec![(0, 5), (2, 0), (4, 0)]);
        // Partition 0 in-edges: edges into users 0,2,4: (0,2),(0,4).
        let in0 = read_pairs(&wd.in_edges_path(0), RecordKind::InEdges, &stats).unwrap();
        assert_eq!(in0, vec![(0, 2), (0, 4)]);
        // Partition 1 in-edges: edge into 5 from 0.
        let in1 = read_pairs(&wd.in_edges_path(1), RecordKind::InEdges, &stats).unwrap();
        assert_eq!(in1, vec![(5, 0)]);
        wd.destroy().unwrap();
    }

    #[test]
    fn accumulator_files_initialized_empty() {
        let (wd, p, stats) = setup(4, 2);
        let g = graph_with_edges(4, 2, &[]);
        write_partition_edges(&g, &p, &wd, &stats).unwrap();
        let rows = read_user_lists(&wd.accum_path(0), RecordKind::Accumulators, &stats).unwrap();
        assert_eq!(rows, vec![(0u32, vec![]), (2, vec![])]);
        wd.destroy().unwrap();
    }

    #[test]
    fn initial_reshard_places_every_profile() {
        let (wd, p, stats) = setup(5, 2);
        let mut store = ProfileStore::new(5);
        for u in 0..5u32 {
            store
                .get_mut(UserId::new(u))
                .set(knn_sim::ItemId::new(u), u as f32 + 1.0);
        }
        let moved = reshard_profiles(&wd, None, &p, Some(&store), &stats).unwrap();
        assert_eq!(moved, 5);
        let rows0 = read_user_lists(&wd.profiles_path(0), RecordKind::Profiles, &stats).unwrap();
        let users0: Vec<u32> = rows0.iter().map(|&(u, _)| u).collect();
        assert_eq!(users0, vec![0, 2, 4]);
        wd.destroy().unwrap();
    }

    #[test]
    fn relayout_moves_rows_between_files() {
        let (wd, old, stats) = setup(4, 2); // u % 2
        let mut store = ProfileStore::new(4);
        for u in 0..4u32 {
            store
                .get_mut(UserId::new(u))
                .set(knn_sim::ItemId::new(9), u as f32);
        }
        reshard_profiles(&wd, None, &old, Some(&store), &stats).unwrap();
        // New layout: contiguous halves.
        let new = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let moved = reshard_profiles(&wd, Some(&old), &new, None, &stats).unwrap();
        assert_eq!(moved, 4);
        let rows0 = read_user_lists(&wd.profiles_path(0), RecordKind::Profiles, &stats).unwrap();
        let users0: Vec<u32> = rows0.iter().map(|&(u, _)| u).collect();
        assert_eq!(users0, vec![0, 1]);
        wd.destroy().unwrap();
    }

    #[test]
    fn reshard_without_source_errors() {
        let (wd, p, stats) = setup(4, 2);
        assert!(matches!(
            reshard_profiles(&wd, None, &p, None, &stats),
            Err(EngineError::InputMismatch { .. })
        ));
        wd.destroy().unwrap();
    }

    #[test]
    fn reshard_detects_missing_users() {
        let (wd, p, stats) = setup(4, 2);
        let store = ProfileStore::new(3); // one user short
        assert!(matches!(
            reshard_profiles(&wd, None, &p, Some(&store), &stats),
            Err(EngineError::InputMismatch { .. })
        ));
        wd.destroy().unwrap();
    }

    #[test]
    fn io_is_counted() {
        let (wd, p, stats) = setup(4, 2);
        let g = graph_with_edges(4, 2, &[(0, 1), (2, 3)]);
        write_partition_edges(&g, &p, &wd, &stats).unwrap();
        assert!(stats.snapshot().bytes_written > 0);
        wd.destroy().unwrap();
    }
}
