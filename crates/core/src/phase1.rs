//! Phase 1: KNN-graph partitioning and storage layout.
//!
//! Splits `G(t)` into `m` balanced partitions, writes each partition's
//! in-edge and out-edge streams **sorted by the bridge vertex** `v` (so
//! phase 2 can emit all two-hop tuples `s → v → d` with one sequential
//! merge-scan), migrates profile streams to the new layout, and resets
//! the per-partition top-K accumulator state. All I/O goes through the
//! engine's [`StorageBackend`].
//!
//! The per-partition work — sorting edge rows, encoding and writing
//! stream payloads — runs across the engine's worker budget. Every
//! stream is written by exactly one worker and the streams are
//! disjoint, so the persisted bytes (and the backend's atomic I/O
//! meter) are identical at every thread count.

use knn_graph::{KnnGraph, UserId};
use knn_sim::ProfileStore;
use knn_store::backend::{read_user_lists, write_pairs, write_user_lists};
use knn_store::{StorageBackend, StreamId};

use crate::par;
use crate::partition::Partitioning;
use crate::EngineError;

/// One partition's grouped edge rows: `(out_rows, in_rows)`.
type EdgeRows = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Summary of one phase-1 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase1Stats {
    /// Directed edges written into in-edge streams.
    pub in_edges_written: u64,
    /// Directed edges written into out-edge streams.
    pub out_edges_written: u64,
    /// Profiles migrated between partition streams.
    pub profiles_resharded: u64,
    /// Accumulator entries pre-seeded from `G(t)`'s scored edges.
    pub accums_seeded: u64,
}

/// Writes the per-partition edge streams of `graph` under
/// `partitioning`, preparing partitions across up to `threads`
/// workers.
///
/// For partition `Ri` with users `Vi`:
/// * the **out-edge stream** holds rows `(v, d)` for every edge
///   `v → d, v ∈ Vi`, sorted by `(v, d)`;
/// * the **in-edge stream** holds rows `(v, s)` for every edge
///   `s → v, v ∈ Vi`, sorted by `(v, s)` — the bridge `v` comes first
///   in both layouts.
///
/// Also resets each partition's accumulator stream. Without `seed_ok`
/// every accumulator starts empty (the classic full-rescore path).
/// With `seed_ok`, the accumulator of each user `u` with `seed_ok[u]`
/// is pre-seeded with `u`'s current scored neighbor list — replaying
/// iteration `t-1`'s verdict so phase 4 can skip re-scoring pairs it
/// already evaluated. Callers must only set `seed_ok[u]` when every
/// seed score is still valid: `u`'s own profile **and** every profile
/// in `u`'s neighbor list unchanged since those scores were computed,
/// and no unscored sentinel in the list (see the engine's dirty-bit
/// plumbing).
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure.
pub fn write_partition_edges(
    graph: &KnnGraph,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    threads: usize,
    seed_ok: Option<&[bool]>,
) -> Result<Phase1Stats, EngineError> {
    let m = partitioning.num_partitions();
    let mut result = Phase1Stats::default();

    // Group edges by the partition that owns each endpoint-as-bridge.
    let mut out_rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
    let mut in_rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
    for (s, nb) in graph.iter_edges() {
        let d = nb.id;
        out_rows[partitioning.partition_of(s) as usize].push((s.raw(), d.raw()));
        in_rows[partitioning.partition_of(d) as usize].push((d.raw(), s.raw()));
    }

    // Each worker owns one partition's rows: sort, write the three
    // streams (no other worker touches them), report the edge counts.
    let rows: Vec<EdgeRows> = out_rows.into_iter().zip(in_rows).collect();
    let counts = par::run_indexed_owned(rows, threads, |p, (mut out, mut inn)| {
        let p = p as u32;
        out.sort_unstable();
        inn.sort_unstable();
        write_pairs(backend, StreamId::OutEdges(p), &out)?;
        write_pairs(backend, StreamId::InEdges(p), &inn)?;
        // Accumulator state for every user of p: empty, or seeded
        // from the user's current scored neighbors.
        let mut seeded = 0u64;
        let accum_rows: Vec<(u32, Vec<(u32, f32)>)> = partitioning
            .users_of(p)
            .iter()
            .map(|&u| {
                let row = match seed_ok {
                    Some(ok) if ok[u.index()] => graph.seed_row(u),
                    _ => Vec::new(),
                };
                seeded += row.len() as u64;
                (u.raw(), row)
            })
            .collect();
        write_user_lists(backend, StreamId::Accumulators(p), &accum_rows)?;
        Ok((out.len() as u64, inn.len() as u64, seeded))
    })?;
    for (out_edges, in_edges, seeded) in counts {
        result.out_edges_written += out_edges;
        result.in_edges_written += in_edges;
        result.accums_seeded += seeded;
    }

    Ok(result)
}

/// Migrates profile streams from `old` partition layout to `new`,
/// reading old streams and sorting/writing new ones across up to
/// `threads` workers (one worker per stream — the streams are
/// disjoint, so the persisted bytes are thread-count-invariant).
///
/// When `old` is `None` the profiles come from `initial` (engine
/// setup); otherwise each old partition stream is read once and its
/// rows are redistributed. Every user must appear exactly once.
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure and
/// [`EngineError::InputMismatch`] if the old layout does not cover
/// exactly the expected users.
pub fn reshard_profiles(
    backend: &dyn StorageBackend,
    old: Option<&Partitioning>,
    new: &Partitioning,
    initial: Option<&ProfileStore>,
    threads: usize,
) -> Result<u64, EngineError> {
    let m = new.num_partitions();
    let n = new.num_users();
    let mut staged: Vec<Vec<knn_store::record_file::UserListRow>> = vec![Vec::new(); m];
    let mut seen = 0u64;

    let mut place = |staged: &mut Vec<Vec<knn_store::record_file::UserListRow>>,
                     user: u32,
                     row: Vec<(u32, f32)>|
     -> Result<(), EngineError> {
        if user as usize >= n {
            return Err(EngineError::input(format!(
                "profile row for user {user} but n={n}"
            )));
        }
        let p = new.partition_of(UserId::new(user));
        staged[p as usize].push((user, row));
        seen += 1;
        Ok(())
    };

    match (old, initial) {
        (Some(old_layout), _) => {
            // Read every old partition stream concurrently; placement
            // stays on the driving thread (the staged rows are sorted
            // by user before the write, so arrival order is moot).
            let all_rows = par::run_indexed(old_layout.num_partitions(), threads, |p| {
                Ok(read_user_lists(backend, StreamId::Profiles(p as u32))?)
            })?;
            for rows in all_rows {
                for (user, row) in rows {
                    place(&mut staged, user, row)?;
                }
            }
        }
        (None, Some(store)) => {
            for (user, profile) in store.iter() {
                let row: Vec<(u32, f32)> = profile.iter().map(|(i, w)| (i.raw(), w)).collect();
                place(&mut staged, user.raw(), row)?;
            }
        }
        (None, None) => {
            return Err(EngineError::input(
                "reshard needs either an old layout or an initial profile store",
            ));
        }
    }

    if seen != n as u64 {
        return Err(EngineError::input(format!(
            "reshard saw {seen} profile rows, expected {n}"
        )));
    }

    // Sort and write each new stream on its own worker, dropping the
    // partition's rows as soon as its stream is persisted.
    par::run_indexed_owned(staged, threads, |p, mut rows| {
        rows.sort_unstable_by_key(|&(u, _)| u);
        write_user_lists(backend, StreamId::Profiles(p as u32), &rows)?;
        Ok(())
    })?;
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::Neighbor;
    use knn_store::backend::read_pairs;
    use knn_store::{DiskBackend, MemBackend};

    fn setup(n: usize, m: usize) -> (Box<dyn StorageBackend>, Partitioning) {
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        (Box::new(MemBackend::new()), p)
    }

    fn graph_with_edges(n: usize, k: usize, edges: &[(u32, u32)]) -> KnnGraph {
        let mut g = KnnGraph::new(n, k);
        for &(s, d) in edges {
            g.insert(UserId::new(s), Neighbor::new(UserId::new(d), 0.5));
        }
        g
    }

    #[test]
    fn edge_files_are_sorted_by_bridge() {
        let (b, p) = setup(6, 2);
        let b = b.as_ref();
        // Edges: 4→0, 2→0, 0→5 (users 0,2,4 in partition 0; 1,3,5 in 1).
        let g = graph_with_edges(6, 3, &[(4, 0), (2, 0), (0, 5)]);
        let st = write_partition_edges(&g, &p, b, 1, None).unwrap();
        assert_eq!(st.out_edges_written, 3);
        assert_eq!(st.in_edges_written, 3);
        // Partition 0 out-edges: bridges 0,2,4 → rows (0,5),(2,0),(4,0).
        let out0 = read_pairs(b, StreamId::OutEdges(0)).unwrap();
        assert_eq!(out0, vec![(0, 5), (2, 0), (4, 0)]);
        // Partition 0 in-edges: edges into users 0,2,4: (0,2),(0,4).
        let in0 = read_pairs(b, StreamId::InEdges(0)).unwrap();
        assert_eq!(in0, vec![(0, 2), (0, 4)]);
        // Partition 1 in-edges: edge into 5 from 0.
        let in1 = read_pairs(b, StreamId::InEdges(1)).unwrap();
        assert_eq!(in1, vec![(5, 0)]);
    }

    #[test]
    fn accumulator_files_initialized_empty() {
        let (b, p) = setup(4, 2);
        let g = graph_with_edges(4, 2, &[]);
        write_partition_edges(&g, &p, b.as_ref(), 1, None).unwrap();
        let rows = read_user_lists(b.as_ref(), StreamId::Accumulators(0)).unwrap();
        assert_eq!(rows, vec![(0u32, vec![]), (2, vec![])]);
    }

    #[test]
    fn accumulators_seed_from_scored_edges_when_allowed() {
        let (b, p) = setup(4, 2);
        let mut g = KnnGraph::new(4, 2);
        g.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.9));
        g.insert(UserId::new(0), Neighbor::new(UserId::new(3), 0.4));
        g.insert(UserId::new(2), Neighbor::new(UserId::new(1), 0.7));
        // User 0 may seed; user 2 may not (e.g. its profile changed).
        let seed_ok = vec![true, true, false, true];
        let st = write_partition_edges(&g, &p, b.as_ref(), 1, Some(&seed_ok)).unwrap();
        assert_eq!(st.accums_seeded, 2, "only user 0's two edges seed");
        let rows = read_user_lists(b.as_ref(), StreamId::Accumulators(0)).unwrap();
        assert_eq!(
            rows,
            vec![(0u32, vec![(1, 0.9), (3, 0.4)]), (2, vec![])],
            "seed rows carry the scored list best-first; denied users stay empty"
        );
    }

    #[test]
    fn initial_reshard_places_every_profile() {
        let (b, p) = setup(5, 2);
        let mut store = ProfileStore::new(5);
        for u in 0..5u32 {
            store
                .get_mut(UserId::new(u))
                .set(knn_sim::ItemId::new(u), u as f32 + 1.0);
        }
        let moved = reshard_profiles(b.as_ref(), None, &p, Some(&store), 1).unwrap();
        assert_eq!(moved, 5);
        let rows0 = read_user_lists(b.as_ref(), StreamId::Profiles(0)).unwrap();
        let users0: Vec<u32> = rows0.iter().map(|&(u, _)| u).collect();
        assert_eq!(users0, vec![0, 2, 4]);
    }

    #[test]
    fn relayout_moves_rows_between_files() {
        // Run the relayout on the disk backend too: it is the
        // migration path production working dirs take.
        let disk = DiskBackend::temp("phase1_relayout").unwrap();
        let wd = disk.working_dir().unwrap().clone();
        let old = Partitioning::from_assignment(vec![0, 1, 0, 1], 2).unwrap(); // u % 2
        let mut store = ProfileStore::new(4);
        for u in 0..4u32 {
            store
                .get_mut(UserId::new(u))
                .set(knn_sim::ItemId::new(9), u as f32);
        }
        reshard_profiles(&disk, None, &old, Some(&store), 1).unwrap();
        // New layout: contiguous halves.
        let new = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        let moved = reshard_profiles(&disk, Some(&old), &new, None, 2).unwrap();
        assert_eq!(moved, 4);
        let rows0 = read_user_lists(&disk, StreamId::Profiles(0)).unwrap();
        let users0: Vec<u32> = rows0.iter().map(|&(u, _)| u).collect();
        assert_eq!(users0, vec![0, 1]);
        wd.destroy().unwrap();
    }

    #[test]
    fn reshard_without_source_errors() {
        let (b, p) = setup(4, 2);
        assert!(matches!(
            reshard_profiles(b.as_ref(), None, &p, None, 1),
            Err(EngineError::InputMismatch { .. })
        ));
    }

    #[test]
    fn reshard_detects_missing_users() {
        let (b, p) = setup(4, 2);
        let store = ProfileStore::new(3); // one user short
        assert!(matches!(
            reshard_profiles(b.as_ref(), None, &p, Some(&store), 1),
            Err(EngineError::InputMismatch { .. })
        ));
    }

    #[test]
    fn io_is_counted() {
        let (b, p) = setup(4, 2);
        let g = graph_with_edges(4, 2, &[(0, 1), (2, 3)]);
        write_partition_edges(&g, &p, b.as_ref(), 1, None).unwrap();
        assert!(b.stats().snapshot().bytes_written > 0);
    }

    /// The phase-1 determinism leg: identical stream bytes, stats, and
    /// I/O totals at every thread count.
    #[test]
    fn thread_count_does_not_change_phase1_output() {
        let n = 50;
        let g = KnnGraph::random_init(n, 4, 33);
        let mut store = ProfileStore::new(n);
        for u in 0..n as u32 {
            store
                .get_mut(UserId::new(u))
                .set(knn_sim::ItemId::new(u % 7), 1.0 + u as f32);
        }
        type Reference = (Phase1Stats, Vec<(StreamId, Vec<u8>)>, u64);
        let mut reference: Option<Reference> = None;
        for threads in [1usize, 2, 4] {
            let (b, p) = setup(n, 5);
            let b = b.as_ref();
            reshard_profiles(b, None, &p, Some(&store), threads).unwrap();
            let st = write_partition_edges(&g, &p, b, threads, None).unwrap();
            let mut streams: Vec<(StreamId, Vec<u8>)> = b
                .list()
                .unwrap()
                .into_iter()
                .map(|s| (s, b.read(s).unwrap()))
                .collect();
            streams.sort_by_key(|&(s, _)| s);
            let bytes_written = b.stats().snapshot().bytes_written;
            match &reference {
                None => reference = Some((st, streams, bytes_written)),
                Some((ref_st, ref_streams, ref_bytes)) => {
                    assert_eq!(ref_st, &st, "threads={threads}");
                    assert_eq!(ref_streams, &streams, "threads={threads}");
                    assert_eq!(ref_bytes, &bytes_written, "threads={threads}");
                }
            }
        }
    }
}
