//! Per-iteration metrics and reports.

use std::fmt;
use std::time::Duration;

use knn_store::{CacheCounters, IoSnapshot};

use crate::traversal::TraversalCost;
use crate::tuple_table::TupleTableStats;

/// Names of the five phases, for display.
pub const PHASE_NAMES: [&str; 5] = [
    "partitioning",
    "tuple generation",
    "pi graph",
    "knn computation",
    "profile updates",
];

/// Everything measured during one engine iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationReport {
    /// Iteration index `t` (0-based; this report covers `G(t) → G(t+1)`).
    pub iteration: u64,
    /// Wall-clock time of each phase.
    pub phase_durations: [Duration; 5],
    /// I/O performed by each phase.
    pub phase_io: [IoSnapshot; 5],
    /// Partition cache operations of phase 4 (the Table-1 metric).
    pub cache: CacheCounters,
    /// Dry-run prediction from the phase-3 schedule (must match
    /// `cache` when `cache_slots` agree).
    pub predicted: TraversalCost,
    /// Tuple-table statistics from phase 2.
    pub tuples: TupleTableStats,
    /// Number of schedule steps (PI pairs processed).
    pub schedule_len: usize,
    /// Similarity evaluations performed (kernels actually run).
    pub sims_computed: u64,
    /// Tuples suppressed by cross-iteration pair tracking: already
    /// evaluated last iteration with provably unchanged outcome, so
    /// no kernel ran.
    pub sims_skipped: u64,
    /// Tuples dropped by the upper-bound filter: their O(1) score
    /// ceiling could not beat the current k-th accumulator entry.
    pub sims_pruned: u64,
    /// Accumulator entries pre-seeded in phase 1 from `G(t)`'s scored
    /// edges (the replayed prior verdicts that make suppression
    /// sound).
    pub accums_seeded: u64,
    /// Bytes written into phase-2 tuple spill runs (the out-of-core
    /// overflow traffic; 0 when everything staged in memory). Sourced
    /// from the backend's [`knn_store::IoStats`] spill meter.
    pub bytes_spilled: u64,
    /// Phase-2 spill runs written.
    pub spill_runs: u64,
    /// Phase-2 k-way merge passes over spill runs (one per bucket that
    /// had runs to merge).
    pub merge_passes: u64,
    /// Profile updates applied in phase 5.
    pub updates_applied: u64,
    /// The partitioning objective `Σ (N_in + N_out)` of this iteration.
    pub replication_cost: u64,
    /// Unique phase-2 tuples whose two endpoints live in the same
    /// partition (the PI-graph diagonal) — the locality a placement
    /// policy buys: intra-partition tuples never spill across partition
    /// streams nor cross shards.
    pub intra_partition_tuples: u64,
    /// Fraction of `G(t)` edges absent from `G(t+1)`.
    pub changed_fraction: f64,
}

impl IterationReport {
    /// Kernel evaluations actually performed per second of phase-4
    /// time (suppressed/pruned tuples are not computations and do not
    /// inflate the rate); `None` when the phase was too fast to time.
    pub fn scan_rate(&self) -> Option<f64> {
        let secs = self.phase_durations[3].as_secs_f64();
        if secs > 0.0 {
            Some(self.sims_computed as f64 / secs)
        } else {
            None
        }
    }

    /// Fraction of this iteration's unique tuples whose kernel
    /// evaluation was avoided (suppressed or bound-pruned); 0 when
    /// there were no tuples.
    pub fn sims_avoided_fraction(&self) -> f64 {
        let total = self.sims_computed + self.sims_skipped + self.sims_pruned;
        if total == 0 {
            0.0
        } else {
            (self.sims_skipped + self.sims_pruned) as f64 / total as f64
        }
    }

    /// Total wall-clock time across phases.
    pub fn total_duration(&self) -> Duration {
        self.phase_durations.iter().sum()
    }

    /// Total bytes moved (read + write) across phases.
    pub fn total_bytes(&self) -> u64 {
        self.phase_io.iter().map(IoSnapshot::bytes_total).sum()
    }

    /// Transient-I/O retries performed across phases (0 in a clean
    /// run; nonzero only when the backend reported
    /// [`knn_store::StoreError::Transient`] failures that the retry
    /// policy absorbed).
    pub fn retries(&self) -> u64 {
        self.phase_io.iter().map(|io| io.retries).sum()
    }

    /// Staged-backup restores performed across phases (0 in a clean
    /// run; nonzero only when crash recovery rolled streams back).
    pub fn rollbacks(&self) -> u64 {
        self.phase_io.iter().map(|io| io.rollbacks).sum()
    }

    /// Fraction of this iteration's unique tuples that stayed inside
    /// one partition; 0 when there were no tuples. Higher is better —
    /// a locality-aware partitioner (e.g.
    /// `PartitionerKind::Cluster`) exists to raise this number.
    pub fn intra_partition_tuple_fraction(&self) -> f64 {
        if self.tuples.unique == 0 {
            0.0
        } else {
            self.intra_partition_tuples as f64 / self.tuples.unique as f64
        }
    }
}

impl fmt::Display for IterationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "iteration {}:", self.iteration)?;
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            writeln!(
                f,
                "  {:>2}. {:<17} {:>9.3?}  read {:>12} B  wrote {:>12} B",
                i + 1,
                name,
                self.phase_durations[i],
                self.phase_io[i].bytes_read,
                self.phase_io[i].bytes_written,
            )?;
        }
        writeln!(
            f,
            "  tuples: {} offered, {} unique, {} duplicates, {} spills",
            self.tuples.offered, self.tuples.unique, self.tuples.duplicates, self.tuples.spills
        )?;
        writeln!(
            f,
            "  spill: {} B in {} runs, {} merge passes",
            self.bytes_spilled, self.spill_runs, self.merge_passes
        )?;
        writeln!(
            f,
            "  schedule: {} pairs; partition ops: {} loads + {} unloads = {} (predicted {})",
            self.schedule_len,
            self.cache.loads,
            self.cache.unloads,
            self.cache.total_ops(),
            self.predicted.total_ops(),
        )?;
        writeln!(
            f,
            "  similarities: {} computed, {} skipped, {} pruned ({:.1}% avoided); {} seeds",
            self.sims_computed,
            self.sims_skipped,
            self.sims_pruned,
            self.sims_avoided_fraction() * 100.0,
            self.accums_seeded,
        )?;
        writeln!(
            f,
            "  locality: {} intra-partition tuples ({:.1}%)",
            self.intra_partition_tuples,
            self.intra_partition_tuple_fraction() * 100.0
        )?;
        writeln!(
            f,
            "  replication cost: {}; updates: {}; changed: {:.2}%",
            self.replication_cost,
            self.updates_applied,
            self.changed_fraction * 100.0
        )
    }
}

/// Outcome of [`crate::KnnEngine::run_until_converged`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceOutcome {
    /// Whether the change fraction dropped below the threshold.
    pub converged: bool,
    /// Iterations executed.
    pub iterations_run: usize,
    /// The final change fraction observed.
    pub final_change_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IterationReport {
        IterationReport {
            iteration: 3,
            phase_durations: [Duration::from_millis(10); 5],
            phase_io: [IoSnapshot {
                bytes_read: 100,
                bytes_written: 50,
                ..Default::default()
            }; 5],
            cache: CacheCounters {
                loads: 10,
                unloads: 10,
                hits: 4,
            },
            predicted: TraversalCost {
                loads: 10,
                unloads: 10,
                hits: 4,
                steps: 7,
            },
            tuples: TupleTableStats {
                offered: 100,
                unique: 80,
                duplicates: 20,
                spills: 1,
            },
            schedule_len: 7,
            sims_computed: 80,
            sims_skipped: 15,
            sims_pruned: 5,
            accums_seeded: 12,
            bytes_spilled: 4096,
            spill_runs: 3,
            merge_passes: 2,
            updates_applied: 2,
            replication_cost: 42,
            intra_partition_tuples: 20,
            changed_fraction: 0.25,
        }
    }

    #[test]
    fn display_mentions_every_phase() {
        let text = sample().to_string();
        for name in PHASE_NAMES {
            assert!(text.contains(name), "missing {name} in {text}");
        }
        assert!(text.contains("predicted 20"));
    }

    #[test]
    fn totals_sum_phases() {
        let r = sample();
        assert_eq!(r.total_duration(), Duration::from_millis(50));
        assert_eq!(r.total_bytes(), 5 * 150);
    }

    #[test]
    fn retries_and_rollbacks_sum_phases() {
        let mut r = sample();
        assert_eq!(r.retries(), 0);
        assert_eq!(r.rollbacks(), 0);
        r.phase_io[1].retries = 3;
        r.phase_io[4].retries = 2;
        r.phase_io[0].rollbacks = 1;
        assert_eq!(r.retries(), 5);
        assert_eq!(r.rollbacks(), 1);
    }

    #[test]
    fn scan_rate_uses_phase4_time_and_only_computed_sims() {
        let r = sample();
        let rate = r.scan_rate().unwrap();
        // 80 computed / 10ms — skipped and pruned tuples don't count.
        assert!((rate - 8000.0).abs() < 1e-6, "{rate}");
    }

    #[test]
    fn avoided_fraction_counts_skips_and_prunes() {
        let r = sample();
        // (15 + 5) / (80 + 15 + 5)
        assert!((r.sims_avoided_fraction() - 0.2).abs() < 1e-9);
        let empty = IterationReport {
            sims_computed: 0,
            sims_skipped: 0,
            sims_pruned: 0,
            ..sample()
        };
        assert_eq!(empty.sims_avoided_fraction(), 0.0);
    }

    #[test]
    fn display_reports_the_scoring_funnel() {
        let text = sample().to_string();
        assert!(text.contains("80 computed"), "{text}");
        assert!(text.contains("15 skipped"), "{text}");
        assert!(text.contains("5 pruned"), "{text}");
        assert!(text.contains("12 seeds"), "{text}");
    }

    #[test]
    fn display_reports_the_spill_traffic() {
        let text = sample().to_string();
        assert!(text.contains("4096 B in 3 runs"), "{text}");
        assert!(text.contains("2 merge passes"), "{text}");
    }

    #[test]
    fn intra_partition_fraction_counts_unique_tuples() {
        let r = sample();
        // 20 intra / 80 unique.
        assert!((r.intra_partition_tuple_fraction() - 0.25).abs() < 1e-9);
        assert!(r.to_string().contains("20 intra-partition tuples (25.0%)"));
        let empty = IterationReport {
            intra_partition_tuples: 0,
            tuples: TupleTableStats::default(),
            ..sample()
        };
        assert_eq!(empty.intra_partition_tuple_fraction(), 0.0);
    }
}
