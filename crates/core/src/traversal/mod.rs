//! Phase-3 PI-graph traversal heuristics.
//!
//! A heuristic turns the PI graph into a *schedule*: an ordered list of
//! partition pairs such that every unordered pair with tuples appears
//! exactly once (self-pairs included). Phase 4 processes the schedule
//! with a two-slot cache, so the ordering alone decides how many
//! partition load/unload operations the iteration pays — the metric of
//! the paper's Table 1.
//!
//! All heuristics share the paper's pivot discipline: pick a pivot
//! partition, process **all** its remaining PI edges while it stays
//! resident, remove it from further consideration, continue with the
//! next pivot. They differ in pivot choice and neighbor order:
//!
//! * [`Heuristic::Sequential`] — pivots `0..m` in index order,
//!   neighbors ascending (the paper's baseline);
//! * [`Heuristic::DegreeHighLow`] — pivot = highest remaining degree,
//!   neighbors from highest to lowest degree (paper, version 1);
//! * [`Heuristic::DegreeLowHigh`] — same pivots, neighbors from lowest
//!   to highest degree (paper, version 2 — usually the best);
//! * [`Heuristic::GreedyChain`] — extension: the next pivot is the
//!   just-processed neighbor when possible, so the pivot switch finds
//!   the partition already resident (the paper's future-work call for
//!   "more heuristics");
//! * [`Heuristic::WeightAware`] — extension: degree ordering weighted
//!   by tuple counts, prioritizing heavy buckets.

mod schedule;
mod sim_trace;

pub use schedule::{PairStep, Schedule};
pub use sim_trace::{simulate_schedule_ops, TraversalCost};

use crate::PiGraph;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// The built-in traversal heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Heuristic {
    /// Pivots in partition-index order (paper's baseline).
    Sequential,
    /// Degree-ordered pivots, neighbors high→low degree (paper v1).
    DegreeHighLow,
    /// Degree-ordered pivots, neighbors low→high degree (paper v2).
    #[default]
    DegreeLowHigh,
    /// Chain pivots through already-resident partitions (extension).
    GreedyChain,
    /// Tuple-weight-ordered pivots and neighbors (extension).
    WeightAware,
}

impl Heuristic {
    /// The three heuristics evaluated in the paper's Table 1.
    pub const PAPER: [Heuristic; 3] = [
        Heuristic::Sequential,
        Heuristic::DegreeHighLow,
        Heuristic::DegreeLowHigh,
    ];

    /// All built-in heuristics (paper + extensions).
    pub const ALL: [Heuristic; 5] = [
        Heuristic::Sequential,
        Heuristic::DegreeHighLow,
        Heuristic::DegreeLowHigh,
        Heuristic::GreedyChain,
        Heuristic::WeightAware,
    ];

    /// Computes the processing schedule for `pi`.
    ///
    /// The schedule covers every unordered pair of `pi` exactly once
    /// and every self-pair exactly once (tested invariant).
    pub fn schedule(&self, pi: &PiGraph) -> Schedule {
        let mut state = TraversalState::new(pi);
        let mut steps: Vec<PairStep> = Vec::new();
        while let Some(pivot) = self.next_pivot(&mut state) {
            // Self-bucket first: it needs only the pivot resident.
            if state.self_pairs[pivot as usize] {
                state.self_pairs[pivot as usize] = false;
                steps.push(PairStep { a: pivot, b: pivot });
            }
            let mut neighbors: Vec<u32> = state.adjacency[pivot as usize].iter().copied().collect();
            self.order_neighbors(&state, pivot, &mut neighbors);
            for j in neighbors {
                steps.push(PairStep { a: pivot, b: j });
                state.remove_pair(pivot, j);
            }
            state.retire(pivot);
        }
        Schedule::new(steps)
    }

    fn next_pivot(&self, state: &mut TraversalState) -> Option<u32> {
        match self {
            Heuristic::Sequential => state.active_ascending(),
            Heuristic::DegreeHighLow | Heuristic::DegreeLowHigh => state.active_max_degree(),
            Heuristic::GreedyChain => state
                .last_processed
                .filter(|p| state.has_work(*p))
                .or_else(|| state.active_max_degree()),
            Heuristic::WeightAware => state.active_max_weight(),
        }
    }

    fn order_neighbors(&self, state: &TraversalState, pivot: u32, neighbors: &mut [u32]) {
        match self {
            Heuristic::Sequential => neighbors.sort_unstable(),
            Heuristic::DegreeHighLow => {
                neighbors.sort_unstable_by_key(|&j| (std::cmp::Reverse(state.degree(j)), j));
            }
            Heuristic::DegreeLowHigh => {
                neighbors.sort_unstable_by_key(|&j| (state.degree(j), j));
            }
            Heuristic::GreedyChain => {
                // Ascending degree, so the heaviest neighbor runs last
                // and is still resident when it becomes the next pivot.
                neighbors.sort_unstable_by_key(|&j| (state.degree(j), j));
            }
            Heuristic::WeightAware => {
                neighbors
                    .sort_unstable_by_key(|&j| (std::cmp::Reverse(state.pair_weight(pivot, j)), j));
            }
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Heuristic::Sequential => "sequential",
            Heuristic::DegreeHighLow => "degree-high-low",
            Heuristic::DegreeLowHigh => "degree-low-high",
            Heuristic::GreedyChain => "greedy-chain",
            Heuristic::WeightAware => "weight-aware",
        };
        f.write_str(s)
    }
}

/// Mutable traversal bookkeeping over the remaining PI graph.
///
/// Pivot selection must stay cheap at Table-1 scale (tens of thousands
/// of PI nodes), so the degree/weight orders use lazy max-heaps: every
/// degree or weight change pushes a fresh entry, and stale entries are
/// discarded at pop time by re-checking the current value.
struct TraversalState {
    /// Remaining neighbor sets (both directions merged), by partition.
    adjacency: Vec<BTreeSet<u32>>,
    /// Partitions with an unprocessed self-bucket.
    self_pairs: Vec<bool>,
    /// Pair weights for the weight-aware ordering.
    weights: HashMap<(u32, u32), u64>,
    /// Remaining total incident weight per partition.
    total_weights: Vec<u64>,
    /// Lazy max-heap of (degree, lowest-id-first) pivot candidates.
    degree_heap: BinaryHeap<(usize, Reverse<u32>)>,
    /// Lazy max-heap of (total weight, lowest-id-first) candidates.
    weight_heap: BinaryHeap<(u64, Reverse<u32>)>,
    /// Monotone cursor for the sequential order.
    seq_cursor: usize,
    /// The neighbor processed most recently (greedy-chain state).
    last_processed: Option<u32>,
    /// Pivot candidates not yet retired.
    active: Vec<bool>,
}

impl TraversalState {
    fn new(pi: &PiGraph) -> Self {
        let m = pi.num_partitions();
        let mut adjacency: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); m];
        let mut weights = HashMap::new();
        let mut total_weights = vec![0u64; m];
        for (i, j) in pi.unordered_pairs() {
            adjacency[i as usize].insert(j);
            adjacency[j as usize].insert(i);
            let w = pi.pair_weight(i, j);
            weights.insert((i, j), w);
            total_weights[i as usize] += w;
            total_weights[j as usize] += w;
        }
        let mut self_pairs = vec![false; m];
        for p in pi.self_pairs() {
            self_pairs[p as usize] = true;
        }
        let active = vec![true; m];
        let mut state = TraversalState {
            adjacency,
            self_pairs,
            weights,
            total_weights,
            degree_heap: BinaryHeap::new(),
            weight_heap: BinaryHeap::new(),
            seq_cursor: 0,
            last_processed: None,
            active,
        };
        for p in 0..m as u32 {
            if state.has_work(p) {
                state.degree_heap.push((state.degree(p), Reverse(p)));
                state
                    .weight_heap
                    .push((state.total_weights[p as usize], Reverse(p)));
            }
        }
        state
    }

    fn degree(&self, p: u32) -> usize {
        self.adjacency[p as usize].len()
    }

    fn pair_weight(&self, a: u32, b: u32) -> u64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.weights.get(&key).copied().unwrap_or(0)
    }

    fn has_work(&self, p: u32) -> bool {
        self.active[p as usize] && (self.degree(p) > 0 || self.self_pairs[p as usize])
    }

    fn active_ascending(&mut self) -> Option<u32> {
        // Edges are only ever removed, so a skipped partition never
        // regains work: the cursor is monotone.
        while self.seq_cursor < self.active.len() {
            let p = self.seq_cursor as u32;
            if self.has_work(p) {
                return Some(p);
            }
            self.seq_cursor += 1;
        }
        None
    }

    fn active_max_degree(&mut self) -> Option<u32> {
        while let Some((d, Reverse(p))) = self.degree_heap.pop() {
            if self.has_work(p) && self.degree(p) == d {
                return Some(p);
            }
            // Stale entry: a fresh one was pushed when the degree
            // changed (or the partition is retired/workless).
        }
        None
    }

    fn active_max_weight(&mut self) -> Option<u32> {
        while let Some((w, Reverse(p))) = self.weight_heap.pop() {
            if self.has_work(p) && self.total_weights[p as usize] == w {
                return Some(p);
            }
        }
        None
    }

    fn remove_pair(&mut self, a: u32, b: u32) {
        let w = self.pair_weight(a, b);
        self.adjacency[a as usize].remove(&b);
        self.adjacency[b as usize].remove(&a);
        for p in [a, b] {
            self.total_weights[p as usize] -= w;
            if self.has_work(p) {
                self.degree_heap.push((self.degree(p), Reverse(p)));
                self.weight_heap
                    .push((self.total_weights[p as usize], Reverse(p)));
            }
        }
        self.last_processed = Some(b);
    }

    fn retire(&mut self, p: u32) {
        self.active[p as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pi_from_pairs(m: usize, pairs: &[(u32, u32)]) -> PiGraph {
        PiGraph::from_network_shape(m, pairs)
    }

    /// Every unordered pair and self-pair appears exactly once.
    fn assert_covers(pi: &PiGraph, schedule: &Schedule) {
        let mut expected: Vec<(u32, u32)> = pi.unordered_pairs();
        expected.extend(pi.self_pairs().into_iter().map(|i| (i, i)));
        expected.sort_unstable();
        let mut got: Vec<(u32, u32)> = schedule
            .steps()
            .iter()
            .map(|s| if s.a <= s.b { (s.a, s.b) } else { (s.b, s.a) })
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn all_heuristics_cover_every_pair_exactly_once() {
        let pi = pi_from_pairs(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (1, 1),
                (5, 5),
            ],
        );
        for h in Heuristic::ALL {
            let s = h.schedule(&pi);
            assert_covers(&pi, &s);
        }
    }

    #[test]
    fn sequential_pivots_in_index_order() {
        let pi = pi_from_pairs(4, &[(0, 3), (1, 2), (0, 1)]);
        let s = Heuristic::Sequential.schedule(&pi);
        let steps = s.steps();
        // Pivot 0 first: edges (0,1) then (0,3); then pivot 1: (1,2).
        assert_eq!(steps[0], PairStep { a: 0, b: 1 });
        assert_eq!(steps[1], PairStep { a: 0, b: 3 });
        assert_eq!(steps[2], PairStep { a: 1, b: 2 });
    }

    #[test]
    fn degree_heuristics_pick_highest_degree_pivot() {
        // Star centered at 2 plus a pendant pair (0,1).
        let pi = pi_from_pairs(6, &[(2, 0), (2, 1), (2, 3), (2, 4), (0, 1)]);
        for h in [Heuristic::DegreeHighLow, Heuristic::DegreeLowHigh] {
            let s = h.schedule(&pi);
            assert_eq!(s.steps()[0].a, 2, "{h} should pivot on the hub");
            assert_covers(&pi, &s);
        }
    }

    #[test]
    fn high_low_and_low_high_order_neighbors_oppositely() {
        // Pivot 0 has neighbors 1 (degree 1), 2 (degree 2), 3 (degree 3).
        let pi = pi_from_pairs(7, &[(0, 1), (0, 2), (0, 3), (2, 4), (3, 4), (3, 5)]);
        let hi = Heuristic::DegreeHighLow.schedule(&pi);
        let lo = Heuristic::DegreeLowHigh.schedule(&pi);
        // Both pick pivot 0 or 3 (degree 3); ties break to the lower id
        // via Reverse(p) in max_by_key.
        assert_eq!(hi.steps()[0].a, 0);
        assert_eq!(lo.steps()[0].a, 0);
        let hi_order: Vec<u32> = hi.steps().iter().take(3).map(|s| s.b).collect();
        let lo_order: Vec<u32> = lo.steps().iter().take(3).map(|s| s.b).collect();
        assert_eq!(hi_order, vec![3, 2, 1]);
        assert_eq!(lo_order, vec![1, 2, 3]);
    }

    #[test]
    fn self_pair_scheduled_before_neighbors() {
        let pi = pi_from_pairs(3, &[(0, 0), (0, 1), (0, 2)]);
        for h in Heuristic::ALL {
            let s = h.schedule(&pi);
            let self_pos = s.steps().iter().position(|st| st.a == st.b).unwrap();
            let first_zero_pair = s
                .steps()
                .iter()
                .position(|st| st.a != st.b && (st.a == 0 || st.b == 0))
                .unwrap();
            assert!(self_pos < first_zero_pair, "{h}: self-pair must come first");
        }
    }

    #[test]
    fn isolated_self_pair_still_scheduled() {
        let pi = pi_from_pairs(3, &[(1, 1)]);
        for h in Heuristic::ALL {
            let s = h.schedule(&pi);
            assert_eq!(s.steps(), &[PairStep { a: 1, b: 1 }], "{h}");
        }
    }

    #[test]
    fn empty_pi_graph_gives_empty_schedule() {
        let pi = PiGraph::new(4);
        for h in Heuristic::ALL {
            assert!(h.schedule(&pi).steps().is_empty());
        }
    }

    #[test]
    fn greedy_chain_reuses_last_neighbor_as_pivot() {
        // Path 0-1-2-3: after pivot 1 (max degree first is 1 or 2),
        // the chain should continue through a resident partition.
        let pi = pi_from_pairs(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = Heuristic::GreedyChain.schedule(&pi);
        // Consecutive steps share a partition whenever possible.
        let steps = s.steps();
        for w in steps.windows(2) {
            let shared =
                w[0].a == w[1].a || w[0].a == w[1].b || w[0].b == w[1].a || w[0].b == w[1].b;
            assert!(shared, "chain broke between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn weight_aware_prefers_heavy_pairs_first() {
        let mut pi = PiGraph::new(4);
        pi.add_bucket(0, 1, 1);
        pi.add_bucket(2, 3, 100);
        let s = Heuristic::WeightAware.schedule(&pi);
        assert_eq!(s.steps()[0], PairStep { a: 2, b: 3 });
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Heuristic::ALL.iter().map(|h| h.to_string()).collect();
        assert_eq!(names.len(), Heuristic::ALL.len());
    }
}
