//! Traversal schedules.

use std::fmt;

/// One processing step: co-load partitions `a` and `b` and score every
/// tuple between them (`a == b` for a self-pair, needing one slot).
///
/// `a` is the pivot that selected the step — phase 4 keeps it pinned
/// while the step runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairStep {
    /// The pivot partition.
    pub a: u32,
    /// The partner partition (equal to `a` for a self-pair).
    pub b: u32,
}

impl PairStep {
    /// The unordered form `(min, max)`.
    pub fn unordered(&self) -> (u32, u32) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }

    /// Whether this is a self-pair.
    pub fn is_self(&self) -> bool {
        self.a == self.b
    }
}

impl fmt::Display for PairStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(R{}, R{})", self.a, self.b)
    }
}

/// An ordered list of [`PairStep`]s covering every PI-graph pair
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    steps: Vec<PairStep>,
}

impl Schedule {
    /// Wraps an explicit step list.
    pub fn new(steps: Vec<PairStep>) -> Self {
        Schedule { steps }
    }

    /// The steps in processing order.
    pub fn steps(&self) -> &[PairStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates the steps.
    pub fn iter(&self) -> impl Iterator<Item = &PairStep> + '_ {
        self.steps.iter()
    }

    /// Validates that every unordered pair appears at most once,
    /// returning the first duplicate if any.
    pub fn first_duplicate(&self) -> Option<(u32, u32)> {
        let mut seen = std::collections::HashSet::with_capacity(self.steps.len());
        for s in &self.steps {
            if !seen.insert(s.unordered()) {
                return Some(s.unordered());
            }
        }
        None
    }
}

impl FromIterator<PairStep> for Schedule {
    fn from_iter<T: IntoIterator<Item = PairStep>>(iter: T) -> Self {
        Schedule::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_normalizes() {
        assert_eq!(PairStep { a: 3, b: 1 }.unordered(), (1, 3));
        assert_eq!(PairStep { a: 1, b: 3 }.unordered(), (1, 3));
    }

    #[test]
    fn self_pair_detection() {
        assert!(PairStep { a: 2, b: 2 }.is_self());
        assert!(!PairStep { a: 2, b: 3 }.is_self());
    }

    #[test]
    fn duplicate_detection_ignores_direction() {
        let s = Schedule::new(vec![PairStep { a: 0, b: 1 }, PairStep { a: 1, b: 0 }]);
        assert_eq!(s.first_duplicate(), Some((0, 1)));
        let ok = Schedule::new(vec![PairStep { a: 0, b: 1 }, PairStep { a: 0, b: 2 }]);
        assert_eq!(ok.first_duplicate(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let s: Schedule = vec![PairStep { a: 0, b: 0 }].into_iter().collect();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(PairStep { a: 1, b: 2 }.to_string(), "(R1, R2)");
    }
}
