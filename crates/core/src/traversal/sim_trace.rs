//! Dry-run cost simulation of a traversal schedule.
//!
//! Replays a [`Schedule`] against a payload-free [`SlotCache`] to count
//! the partition load/unload operations it would incur — this is the
//! generator of our Table-1 numbers, and phase 4 uses the identical
//! cache so the dry run matches the real execution exactly.

use std::convert::Infallible;

use knn_store::{CacheCounters, SlotCache};

use super::Schedule;

/// The simulated cost of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalCost {
    /// Partition loads (cache misses).
    pub loads: u64,
    /// Partition unloads (evictions plus the end-of-run flush).
    pub unloads: u64,
    /// Requests satisfied by an already-resident partition.
    pub hits: u64,
    /// Number of schedule steps.
    pub steps: u64,
}

impl TraversalCost {
    /// Loads + unloads — the paper's Table-1 metric.
    pub fn total_ops(&self) -> u64 {
        self.loads + self.unloads
    }
}

impl From<CacheCounters> for TraversalCost {
    fn from(c: CacheCounters) -> Self {
        TraversalCost {
            loads: c.loads,
            unloads: c.unloads,
            hits: c.hits,
            steps: 0,
        }
    }
}

/// Replays `schedule` against a `slots`-slot cache (the paper uses 2)
/// and returns the operation counts, including the final flush that
/// unloads whatever is still resident.
///
/// # Panics
///
/// Panics if `slots < 2` while the schedule contains a non-self pair
/// (a pair cannot be co-resident in one slot).
pub fn simulate_schedule_ops(schedule: &Schedule, slots: usize) -> TraversalCost {
    let mut cache: SlotCache<()> = SlotCache::new(slots);
    for step in schedule.iter() {
        cache
            .ensure(step.a, None, |_| Ok::<(), Infallible>(()), |_, _| Ok(()))
            .expect("infallible");
        if !step.is_self() {
            cache
                .ensure(
                    step.b,
                    Some(step.a),
                    |_| Ok::<(), Infallible>(()),
                    |_, _| Ok(()),
                )
                .expect("infallible");
        }
    }
    cache
        .flush(|_, _| Ok::<(), Infallible>(()))
        .expect("infallible");
    let mut cost = TraversalCost::from(cache.counters());
    cost.steps = schedule.len() as u64;
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{Heuristic, PairStep};
    use crate::PiGraph;

    #[test]
    fn empty_schedule_costs_nothing() {
        let cost = simulate_schedule_ops(&Schedule::default(), 2);
        assert_eq!(cost.total_ops(), 0);
        assert_eq!(cost.steps, 0);
    }

    #[test]
    fn single_pair_costs_two_loads_two_unloads() {
        let s = Schedule::new(vec![PairStep { a: 0, b: 1 }]);
        let cost = simulate_schedule_ops(&s, 2);
        assert_eq!(cost.loads, 2);
        assert_eq!(cost.unloads, 2, "final flush unloads both");
        assert_eq!(cost.total_ops(), 4);
    }

    #[test]
    fn self_pair_costs_one_load_one_unload() {
        let s = Schedule::new(vec![PairStep { a: 3, b: 3 }]);
        let cost = simulate_schedule_ops(&s, 2);
        assert_eq!(cost.loads, 1);
        assert_eq!(cost.unloads, 1);
    }

    #[test]
    fn pivot_stays_resident_across_its_steps() {
        // Pivot 0 with three neighbors: loads = 1 (pivot) + 3, hits = 2
        // (pivot re-touched on steps 2 and 3).
        let s = Schedule::new(vec![
            PairStep { a: 0, b: 1 },
            PairStep { a: 0, b: 2 },
            PairStep { a: 0, b: 3 },
        ]);
        let cost = simulate_schedule_ops(&s, 2);
        assert_eq!(cost.loads, 4);
        assert_eq!(cost.hits, 2);
        // Evictions: loading 2 evicts 1; loading 3 evicts 2; flush
        // unloads 0 and 3.
        assert_eq!(cost.unloads, 4);
    }

    #[test]
    fn chained_schedule_saves_ops_versus_scattered() {
        // Path graph: chain order (0,1),(1,2),(2,3) lets each new pivot
        // already be resident; scattered order re-loads.
        let chain = Schedule::new(vec![
            PairStep { a: 0, b: 1 },
            PairStep { a: 1, b: 2 },
            PairStep { a: 2, b: 3 },
        ]);
        let scattered = Schedule::new(vec![
            PairStep { a: 0, b: 1 },
            PairStep { a: 2, b: 3 },
            PairStep { a: 1, b: 2 },
        ]);
        let c = simulate_schedule_ops(&chain, 2).total_ops();
        let s = simulate_schedule_ops(&scattered, 2).total_ops();
        assert!(c < s, "chain {c} vs scattered {s}");
    }

    #[test]
    fn more_slots_never_cost_more() {
        let pi = PiGraph::from_network_shape(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (0, 7),
            ],
        );
        for h in Heuristic::ALL {
            let schedule = h.schedule(&pi);
            let two = simulate_schedule_ops(&schedule, 2).total_ops();
            let four = simulate_schedule_ops(&schedule, 4).total_ops();
            assert!(four <= two, "{h}: 4 slots {four} vs 2 slots {two}");
        }
    }

    #[test]
    fn loads_equal_unloads_at_quiescence() {
        let pi = PiGraph::from_network_shape(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        for h in Heuristic::ALL {
            let cost = simulate_schedule_ops(&h.schedule(&pi), 2);
            assert_eq!(
                cost.loads, cost.unloads,
                "{h}: every load must eventually unload"
            );
        }
    }

    #[test]
    fn degree_heuristics_beat_sequential_on_heavy_tailed_pi() {
        // A hub-dominated PI structure similar in spirit to the paper's
        // datasets: the degree-based orders should need fewer ops.
        use knn_graph::generators::{chung_lu, ChungLuConfig};
        let n = 400;
        let edges = chung_lu(ChungLuConfig::new(n, 1600, 42));
        let pi = PiGraph::from_network_shape(n, &edges);
        let seq = simulate_schedule_ops(&Heuristic::Sequential.schedule(&pi), 2).total_ops();
        let lo = simulate_schedule_ops(&Heuristic::DegreeLowHigh.schedule(&pi), 2).total_ops();
        let hi = simulate_schedule_ops(&Heuristic::DegreeHighLow.schedule(&pi), 2).total_ops();
        assert!(lo < seq, "low-high {lo} should beat sequential {seq}");
        assert!(hi < seq, "high-low {hi} should beat sequential {seq}");
    }
}
