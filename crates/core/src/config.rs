//! Engine configuration.

use knn_cluster::ClusterMethod;
use knn_sim::Measure;

use crate::partition::PartitionerKind;
use crate::traversal::Heuristic;
use crate::EngineError;

/// Validated configuration of a [`crate::KnnEngine`].
///
/// Build with [`EngineConfig::builder`]:
///
/// ```
/// use knn_core::{EngineConfig, Heuristic};
/// use knn_sim::Measure;
///
/// let config = EngineConfig::builder(10_000)
///     .k(10)
///     .num_partitions(16)
///     .measure(Measure::Cosine)
///     .heuristic(Heuristic::DegreeLowHigh)
///     .threads(4)
///     .build()
///     .unwrap();
/// assert_eq!(config.num_users(), 10_000);
/// assert_eq!(config.k(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    num_users: usize,
    k: usize,
    num_partitions: usize,
    measure: Measure,
    heuristic: Heuristic,
    partitioner: PartitionerKind,
    threads: usize,
    cache_slots: usize,
    include_reverse: bool,
    repartition_each_iteration: bool,
    spill_threshold: usize,
    tuple_table_memory: Option<usize>,
    legacy_tuple_pipeline: bool,
    parallel_threshold: usize,
    prune_pairs: bool,
    bound_filter: bool,
    cluster_init: bool,
    num_clusters: Option<usize>,
    cluster_method: ClusterMethod,
    commit_protocol: bool,
    seed: u64,
}

impl EngineConfig {
    /// Starts building a configuration for `num_users` users.
    ///
    /// The default worker budget is 1 thread, unless the
    /// `KNN_TEST_THREADS` environment variable carries a positive
    /// integer — the hook CI uses to drive the whole test suite down
    /// the partition-parallel paths without touching every call site.
    /// An explicit [`threads`](EngineConfigBuilder::threads) call
    /// always wins.
    ///
    /// Similarly, phase-4 pruning
    /// ([`prune_pairs`](EngineConfig::prune_pairs) and
    /// [`bound_filter`](EngineConfig::bound_filter)) defaults to
    /// enabled unless `KNN_TEST_PRUNE=0` is set — the hook CI uses to
    /// run the whole suite down the classic full-rescore path.
    /// Explicit builder calls always win.
    pub fn builder(num_users: usize) -> EngineConfigBuilder {
        EngineConfigBuilder {
            num_users,
            k: 10,
            num_partitions: 8,
            measure: Measure::Cosine,
            heuristic: Heuristic::DegreeLowHigh,
            partitioner: PartitionerKind::Greedy,
            threads: default_threads(),
            cache_slots: 2,
            include_reverse: false,
            repartition_each_iteration: true,
            spill_threshold: 1 << 20,
            tuple_table_memory: None,
            legacy_tuple_pipeline: false,
            parallel_threshold: crate::phase4::DEFAULT_PARALLEL_THRESHOLD,
            prune_pairs: default_prune(),
            bound_filter: default_prune(),
            cluster_init: false,
            num_clusters: None,
            cluster_method: ClusterMethod::KMeans,
            commit_protocol: true,
            seed: 0,
        }
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The KNN bound `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of partitions `m`.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The similarity measure.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// The PI-graph traversal heuristic.
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// The phase-1 partitioner.
    pub fn partitioner(&self) -> PartitionerKind {
        self.partitioner
    }

    /// The engine-wide worker-thread budget: phases 1 (edge layout and
    /// profile resharding), 2 (tuple generation and bucket merge), 4
    /// (similarity scoring), and 5 (profile-update application) all
    /// run partition-parallel across up to this many scoped workers.
    /// Results are identical at every thread count — see the crate
    /// docs for the determinism guarantee.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resident-partition cache slots (the paper uses 2).
    pub fn cache_slots(&self) -> usize {
        self.cache_slots
    }

    /// Whether each tuple `(s, d)` also offers `s` as a candidate to
    /// `d` (NN-Descent-style reverse join; off in the paper).
    pub fn include_reverse(&self) -> bool {
        self.include_reverse
    }

    /// Whether phase 1 recomputes the partitioning every iteration
    /// (paper-faithful) or reuses the iteration-0 assignment.
    pub fn repartition_each_iteration(&self) -> bool {
        self.repartition_each_iteration
    }

    /// Tuple-table spill threshold, in tuples per bucket.
    pub fn spill_threshold(&self) -> usize {
        self.spill_threshold
    }

    /// Optional phase-2 staging byte budget **per scan table**: when
    /// set, a scan table whose total staging exceeds the budget spills
    /// its largest bucket, bounding peak phase-2 staging at
    /// `min(threads, partitions) × budget` bytes regardless of tuple
    /// volume. `None` (the default) bounds staging by
    /// [`spill_threshold`](EngineConfig::spill_threshold) alone.
    /// Per-table by definition, so the spill pattern — and therefore
    /// every persisted byte — stays identical at every thread count.
    pub fn tuple_table_memory(&self) -> Option<usize> {
        self.tuple_table_memory
    }

    /// Whether phase 2 routes through the pre-overhaul row-based
    /// tuple pipeline (hash dedup at offer, comparison sort,
    /// fixed-width spill runs, load-everything merge). Off by default;
    /// exists as the paired baseline of the `tuple_pipeline` bench —
    /// the computed graphs and persisted buckets are identical either
    /// way.
    pub fn legacy_tuple_pipeline(&self) -> bool {
        self.legacy_tuple_pipeline
    }

    /// Minimum surviving-tuple count before phase 4 fans a bucket out
    /// to the worker pool; smaller buckets score inline because the
    /// dispatch overhead would dominate (see
    /// [`Phase4Options::parallel_threshold`](crate::phase4::Phase4Options::parallel_threshold)
    /// for the tradeoff).
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Whether phase 4 suppresses tuples already evaluated last
    /// iteration (cross-iteration pair tracking + accumulator
    /// seeding). Exact: the computed graphs are identical either way;
    /// disabling merely re-scores everything (see the crate docs'
    /// scoring-pipeline section).
    pub fn prune_pairs(&self) -> bool {
        self.prune_pairs
    }

    /// Whether phase 4 drops kernel evaluations whose O(1) score
    /// upper bound cannot beat the current k-th accumulator entry.
    /// Exact: the computed graphs are identical either way.
    pub fn bound_filter(&self) -> bool {
        self.bound_filter
    }

    /// Whether `G(0)` is cluster-seeded (intra-cluster edges from the
    /// `knn-cluster` pre-pass) instead of uniformly random. Exactness
    /// is untouched — only the iteration count to convergence changes.
    pub fn cluster_init(&self) -> bool {
        self.cluster_init
    }

    /// Explicit cluster count for the pre-pass, or `None` for the
    /// `⌈√n⌉` default ([`knn_cluster::default_num_clusters`]).
    pub fn num_clusters(&self) -> Option<usize> {
        self.num_clusters
    }

    /// The cluster count the pre-pass will actually use.
    pub fn effective_num_clusters(&self) -> usize {
        self.num_clusters
            .unwrap_or_else(|| knn_cluster::default_num_clusters(self.num_users))
    }

    /// The clustering algorithm of the pre-pass (default k-means).
    pub fn cluster_method(&self) -> ClusterMethod {
        self.cluster_method
    }

    /// Whether this configuration needs the clustering pre-pass: the
    /// partitioner is [`PartitionerKind::Cluster`] and/or
    /// [`cluster_init`](EngineConfig::cluster_init) is on.
    pub fn clustering_enabled(&self) -> bool {
        self.cluster_init || self.partitioner == PartitionerKind::Cluster
    }

    /// Whether iterations commit atomically (default on): committed
    /// streams are backed up before in-place rewrites, a
    /// generation-stamped commit record is written at the end of each
    /// iteration, and resume rolls back to the last committed
    /// generation (see `knn_store::commit`). Off reproduces the exact
    /// pre-protocol behavior — no backups, no commit record — which is
    /// what the paired recovery bench measures against and how legacy
    /// working directories are generated.
    pub fn commit_protocol(&self) -> bool {
        self.commit_protocol
    }

    /// Seed for every randomized component (initial graph, partitioner
    /// tie-breaks).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The default worker budget: `KNN_TEST_THREADS` when it parses to a
/// positive integer, 1 otherwise.
fn default_threads() -> usize {
    std::env::var("KNN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// The default pruning toggle: enabled unless `KNN_TEST_PRUNE=0` —
/// the CI hook that routes the whole suite down the full-rescore path.
fn default_prune() -> bool {
    std::env::var("KNN_TEST_PRUNE")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Builder for [`EngineConfig`] (see there for an example).
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    num_users: usize,
    k: usize,
    num_partitions: usize,
    measure: Measure,
    heuristic: Heuristic,
    partitioner: PartitionerKind,
    threads: usize,
    cache_slots: usize,
    include_reverse: bool,
    repartition_each_iteration: bool,
    spill_threshold: usize,
    tuple_table_memory: Option<usize>,
    legacy_tuple_pipeline: bool,
    parallel_threshold: usize,
    prune_pairs: bool,
    bound_filter: bool,
    cluster_init: bool,
    num_clusters: Option<usize>,
    cluster_method: ClusterMethod,
    commit_protocol: bool,
    seed: u64,
}

impl EngineConfigBuilder {
    /// Sets the KNN bound `K` (default 10).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the number of partitions `m` (default 8).
    ///
    /// [`build`](EngineConfigBuilder::build) rejects `m == 0` and
    /// `m > num_users`: with fewer users than partitions some
    /// partition is necessarily empty, which the cluster packing of
    /// [`PartitionerKind::Cluster`] (and the balance contract in
    /// general) refuses to produce silently.
    pub fn num_partitions(mut self, m: usize) -> Self {
        self.num_partitions = m;
        self
    }

    /// Sets the similarity measure (default cosine).
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the traversal heuristic (default degree low→high, the
    /// paper's usually-best variant).
    pub fn heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the phase-1 partitioner (default greedy).
    pub fn partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Sets the engine-wide worker-thread budget (default 1, or
    /// `KNN_TEST_THREADS` when set — see [`EngineConfig::builder`]).
    /// Every partition-parallel phase draws from this budget; the
    /// computed graph and persisted bytes do not depend on it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the resident-partition cache capacity (default 2, as in
    /// the paper).
    pub fn cache_slots(mut self, slots: usize) -> Self {
        self.cache_slots = slots;
        self
    }

    /// Enables the NN-Descent-style reverse candidate offer.
    pub fn include_reverse(mut self, yes: bool) -> Self {
        self.include_reverse = yes;
        self
    }

    /// Disables per-iteration repartitioning (reuse iteration-0
    /// assignment).
    pub fn repartition_each_iteration(mut self, yes: bool) -> Self {
        self.repartition_each_iteration = yes;
        self
    }

    /// Sets the tuple-table spill threshold in tuples per bucket
    /// (default 2²⁰).
    pub fn spill_threshold(mut self, tuples: usize) -> Self {
        self.spill_threshold = tuples;
        self
    }

    /// Caps each phase-2 scan table's staging at `bytes` (default
    /// uncapped — see [`EngineConfig::tuple_table_memory`]). Must be
    /// at least 1 KiB when set.
    pub fn tuple_table_memory(mut self, bytes: Option<usize>) -> Self {
        self.tuple_table_memory = bytes;
        self
    }

    /// Routes phase 2 through the legacy row-based tuple pipeline
    /// (paired-bench baseline; results identical, performance is not).
    pub fn legacy_tuple_pipeline(mut self, yes: bool) -> Self {
        self.legacy_tuple_pipeline = yes;
        self
    }

    /// Sets the phase-4 bucket size below which scoring stays inline
    /// instead of fanning out to the worker pool (default
    /// [`DEFAULT_PARALLEL_THRESHOLD`](crate::phase4::DEFAULT_PARALLEL_THRESHOLD);
    /// the result never depends on it, only the dispatch overhead
    /// does).
    pub fn parallel_threshold(mut self, tuples: usize) -> Self {
        self.parallel_threshold = tuples;
        self
    }

    /// Toggles cross-iteration pair suppression (default on, or
    /// `KNN_TEST_PRUNE` — see [`EngineConfig::builder`]). Exact: the
    /// computed graphs are identical either way.
    pub fn prune_pairs(mut self, yes: bool) -> Self {
        self.prune_pairs = yes;
        self
    }

    /// Toggles upper-bound candidate filtering (default on, or
    /// `KNN_TEST_PRUNE` — see [`EngineConfig::builder`]). Exact: the
    /// computed graphs are identical either way.
    pub fn bound_filter(mut self, yes: bool) -> Self {
        self.bound_filter = yes;
        self
    }

    /// Seeds `G(0)` from intra-cluster edges of the `knn-cluster`
    /// pre-pass instead of uniform random neighbors (default off).
    pub fn cluster_init(mut self, yes: bool) -> Self {
        self.cluster_init = yes;
        self
    }

    /// Sets an explicit cluster count for the pre-pass (default
    /// `None`: `⌈√n⌉`). Must satisfy `1 ≤ num_clusters ≤ n`.
    pub fn num_clusters(mut self, clusters: Option<usize>) -> Self {
        self.num_clusters = clusters;
        self
    }

    /// Sets the clustering algorithm of the pre-pass (default
    /// k-means; `RandomBuckets` is the cheaper, coarser variant).
    pub fn cluster_method(mut self, method: ClusterMethod) -> Self {
        self.cluster_method = method;
        self
    }

    /// Toggles the atomic iteration-commit protocol (default on — see
    /// [`EngineConfig::commit_protocol`]).
    pub fn commit_protocol(mut self, yes: bool) -> Self {
        self.commit_protocol = yes;
        self
    }

    /// Sets the global seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any constraint is violated:
    /// `n ≥ 2`, `k ≥ 1`, `1 ≤ m ≤ n`, `threads ≥ 1`, `cache_slots ≥ 2`,
    /// `spill_threshold ≥ 1`.
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        if self.num_users < 2 {
            return Err(EngineError::config(format!(
                "need at least 2 users, got {}",
                self.num_users
            )));
        }
        if self.k == 0 {
            return Err(EngineError::config("K must be at least 1"));
        }
        if self.num_partitions == 0 || self.num_partitions > self.num_users {
            return Err(EngineError::config(format!(
                "num_partitions must be in 1..={} (one user per partition at most), got {}",
                self.num_users, self.num_partitions
            )));
        }
        if self.num_partitions > crate::tuple_table::MAX_PARTITIONS {
            return Err(EngineError::config(format!(
                "num_partitions must be at most {} (the phase-2 spill-run namespace bound), got {}",
                crate::tuple_table::MAX_PARTITIONS,
                self.num_partitions
            )));
        }
        if self.threads == 0 {
            return Err(EngineError::config("threads must be at least 1"));
        }
        if self.cache_slots < 2 {
            return Err(EngineError::config(
                "cache needs at least 2 slots to co-load a partition pair",
            ));
        }
        if self.spill_threshold == 0 {
            return Err(EngineError::config("spill_threshold must be at least 1"));
        }
        if self.tuple_table_memory.is_some_and(|b| b < 1024) {
            return Err(EngineError::config(
                "tuple_table_memory must be at least 1 KiB (or None to disable the budget)",
            ));
        }
        if self.legacy_tuple_pipeline && self.tuple_table_memory.is_some() {
            return Err(EngineError::config(
                "tuple_table_memory is a columnar-pipeline feature; the legacy tuple pipeline \
                 has no staging budget (its dedup maps grow with the unique-tuple count)",
            ));
        }
        if self.parallel_threshold == 0 {
            return Err(EngineError::config(
                "parallel_threshold must be at least 1 (use a huge value to force inline scoring)",
            ));
        }
        if let Some(c) = self.num_clusters {
            if c == 0 || c > self.num_users {
                return Err(EngineError::config(format!(
                    "num_clusters must be in 1..={} (at most one user per cluster), got {c}",
                    self.num_users
                )));
            }
        }
        Ok(EngineConfig {
            num_users: self.num_users,
            k: self.k,
            num_partitions: self.num_partitions,
            measure: self.measure,
            heuristic: self.heuristic,
            partitioner: self.partitioner,
            threads: self.threads,
            cache_slots: self.cache_slots,
            include_reverse: self.include_reverse,
            repartition_each_iteration: self.repartition_each_iteration,
            spill_threshold: self.spill_threshold,
            tuple_table_memory: self.tuple_table_memory,
            legacy_tuple_pipeline: self.legacy_tuple_pipeline,
            parallel_threshold: self.parallel_threshold,
            prune_pairs: self.prune_pairs,
            bound_filter: self.bound_filter,
            cluster_init: self.cluster_init,
            num_clusters: self.num_clusters,
            cluster_method: self.cluster_method,
            commit_protocol: self.commit_protocol,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let c = EngineConfig::builder(100).build().unwrap();
        assert_eq!(c.k(), 10);
        assert_eq!(c.num_partitions(), 8);
        assert_eq!(c.cache_slots(), 2);
        // The default worker budget tracks KNN_TEST_THREADS (the CI
        // matrix hook); without it, 1.
        assert_eq!(c.threads(), default_threads());
        assert!(!c.include_reverse());
        assert!(c.repartition_each_iteration());
        // Pruning tracks KNN_TEST_PRUNE (the CI no-prune hook);
        // without it, on.
        assert_eq!(c.prune_pairs(), default_prune());
        assert_eq!(c.bound_filter(), default_prune());
        assert_eq!(
            c.parallel_threshold(),
            crate::phase4::DEFAULT_PARALLEL_THRESHOLD
        );
    }

    #[test]
    fn explicit_prune_toggles_beat_the_env_default() {
        let c = EngineConfig::builder(100)
            .prune_pairs(false)
            .bound_filter(false)
            .build()
            .unwrap();
        assert!(!c.prune_pairs());
        assert!(!c.bound_filter());
    }

    #[test]
    fn explicit_threads_beat_the_env_default() {
        let c = EngineConfig::builder(100).threads(3).build().unwrap();
        assert_eq!(c.threads(), 3);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(EngineConfig::builder(1).build().is_err());
        assert!(EngineConfig::builder(10).k(0).build().is_err());
        assert!(EngineConfig::builder(10).num_partitions(0).build().is_err());
        assert!(EngineConfig::builder(10)
            .num_partitions(11)
            .build()
            .is_err());
        // Above the phase-2 spill-run namespace bound: a config error,
        // not a mid-iteration panic.
        assert!(EngineConfig::builder(100_000)
            .num_partitions(70_000)
            .build()
            .is_err());
        assert!(EngineConfig::builder(10).threads(0).build().is_err());
        assert!(EngineConfig::builder(10).cache_slots(1).build().is_err());
        assert!(EngineConfig::builder(10)
            .spill_threshold(0)
            .build()
            .is_err());
        assert!(EngineConfig::builder(10)
            .tuple_table_memory(Some(100))
            .build()
            .is_err());
        // The byte budget only exists on the columnar pipeline; the
        // combination must fail loudly, not silently ignore the budget.
        assert!(EngineConfig::builder(10)
            .tuple_table_memory(Some(1 << 20))
            .legacy_tuple_pipeline(true)
            .build()
            .is_err());
        assert!(EngineConfig::builder(10)
            .parallel_threshold(0)
            .build()
            .is_err());
        // Cluster counts outside 1..=n.
        assert!(EngineConfig::builder(10)
            .num_clusters(Some(0))
            .build()
            .is_err());
        assert!(EngineConfig::builder(10)
            .num_clusters(Some(11))
            .build()
            .is_err());
    }

    /// The m ≤ n rejection the cluster packer relies on: the builder
    /// (not the partitioner) is the choke point that keeps an engine
    /// from ever asking any partitioner — cluster packing included —
    /// to leave a partition empty.
    #[test]
    fn more_partitions_than_users_rejected_for_every_partitioner() {
        for kind in PartitionerKind::ALL {
            let err = EngineConfig::builder(6)
                .num_partitions(7)
                .partitioner(kind)
                .build()
                .unwrap_err();
            assert!(err.to_string().contains("num_partitions"), "{kind}: {err}");
        }
    }

    #[test]
    fn clustering_knobs_stick_and_default_off() {
        let c = EngineConfig::builder(100).build().unwrap();
        assert!(!c.cluster_init());
        assert!(!c.clustering_enabled());
        assert_eq!(c.num_clusters(), None);
        assert_eq!(c.effective_num_clusters(), 10, "⌈√100⌉");
        assert_eq!(c.cluster_method(), ClusterMethod::KMeans);

        let c = EngineConfig::builder(100)
            .cluster_init(true)
            .num_clusters(Some(5))
            .cluster_method(ClusterMethod::RandomBuckets)
            .build()
            .unwrap();
        assert!(c.cluster_init());
        assert!(c.clustering_enabled());
        assert_eq!(c.effective_num_clusters(), 5);
        assert_eq!(c.cluster_method(), ClusterMethod::RandomBuckets);

        // The cluster partitioner alone also flips the pre-pass on.
        let c = EngineConfig::builder(100)
            .partitioner(PartitionerKind::Cluster)
            .build()
            .unwrap();
        assert!(!c.cluster_init());
        assert!(c.clustering_enabled());
    }

    #[test]
    fn builder_setters_stick() {
        let c = EngineConfig::builder(50)
            .k(3)
            .num_partitions(5)
            .measure(Measure::Jaccard)
            .heuristic(Heuristic::Sequential)
            .partitioner(PartitionerKind::Contiguous)
            .threads(8)
            .cache_slots(4)
            .include_reverse(true)
            .repartition_each_iteration(false)
            .spill_threshold(128)
            .tuple_table_memory(Some(1 << 20))
            .parallel_threshold(512)
            .prune_pairs(false)
            .bound_filter(true)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(c.k(), 3);
        assert_eq!(c.num_partitions(), 5);
        assert_eq!(c.measure(), Measure::Jaccard);
        assert_eq!(c.heuristic(), Heuristic::Sequential);
        assert_eq!(c.partitioner(), PartitionerKind::Contiguous);
        assert_eq!(c.threads(), 8);
        assert_eq!(c.cache_slots(), 4);
        assert!(c.include_reverse());
        assert!(!c.repartition_each_iteration());
        assert_eq!(c.spill_threshold(), 128);
        assert_eq!(c.tuple_table_memory(), Some(1 << 20));
        assert!(!c.legacy_tuple_pipeline());
        assert_eq!(c.parallel_threshold(), 512);
        let legacy = EngineConfig::builder(50)
            .legacy_tuple_pipeline(true)
            .build()
            .unwrap();
        assert!(legacy.legacy_tuple_pipeline());
        assert!(!c.prune_pairs());
        assert!(c.bound_filter());
        assert_eq!(c.seed(), 99);
    }

    #[test]
    fn commit_protocol_defaults_on_and_toggles() {
        assert!(EngineConfig::builder(10).build().unwrap().commit_protocol());
        assert!(!EngineConfig::builder(10)
            .commit_protocol(false)
            .build()
            .unwrap()
            .commit_protocol());
    }

    #[test]
    fn one_user_per_partition_is_allowed() {
        assert!(EngineConfig::builder(4)
            .num_partitions(4)
            .k(2)
            .build()
            .is_ok());
    }
}
