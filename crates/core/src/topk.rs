//! Per-user bounded top-K candidate accumulators.

use knn_graph::{Neighbor, UserId};

/// Accumulates scored candidates for one user, keeping only the best
/// `K` under the workspace's deterministic order (sim desc, id asc)
/// with at most one entry per candidate id (the best score wins).
///
/// The accumulator is **order-independent**: offering the same multiset
/// of candidates in any order produces the same final list — this is
/// what makes phase 4's result independent of the traversal heuristic
/// and the thread count.
///
/// ```
/// use knn_core::topk::TopKAccumulator;
/// use knn_graph::{Neighbor, UserId};
///
/// let mut acc = TopKAccumulator::new(2);
/// acc.offer(Neighbor::new(UserId::new(1), 0.3));
/// acc.offer(Neighbor::new(UserId::new(2), 0.9));
/// acc.offer(Neighbor::new(UserId::new(3), 0.5));
/// let best = acc.into_sorted();
/// assert_eq!(best[0].id, UserId::new(2));
/// assert_eq!(best[1].id, UserId::new(3));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKAccumulator {
    k: usize,
    /// Kept sorted best-first; length ≤ k; unique ids.
    entries: Vec<Neighbor>,
}

impl TopKAccumulator {
    /// Creates an empty accumulator with bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        TopKAccumulator {
            k,
            entries: Vec::with_capacity(k.min(64)),
        }
    }

    /// The bound `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of entries (≤ K).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no candidate has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the accumulator holds `K` entries — the precondition
    /// for bound-based pruning (a non-full accumulator accepts any
    /// candidate, so nothing can be pruned against it).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// The current k-th (worst retained) entry, or `None` while the
    /// accumulator is not full — the pruning threshold: a candidate
    /// whose score upper bound does not [`Neighbor::beats`] this entry
    /// cannot change the accumulator and need not be scored.
    pub fn threshold(&self) -> Option<Neighbor> {
        if self.is_full() {
            self.entries.last().copied()
        } else {
            None
        }
    }

    /// Offers a candidate; returns `true` if the entry set changed.
    pub fn offer(&mut self, cand: Neighbor) -> bool {
        if let Some(pos) = self.entries.iter().position(|n| n.id == cand.id) {
            if cand.beats(&self.entries[pos]) {
                self.entries.remove(pos);
                let at = self.entries.partition_point(|n| n.beats(&cand));
                self.entries.insert(at, cand);
                return true;
            }
            return false;
        }
        if self.entries.len() < self.k {
            let at = self.entries.partition_point(|n| n.beats(&cand));
            self.entries.insert(at, cand);
            return true;
        }
        let worst = *self.entries.last().expect("full list is non-empty");
        if cand.beats(&worst) {
            self.entries.pop();
            let at = self.entries.partition_point(|n| n.beats(&cand));
            self.entries.insert(at, cand);
            return true;
        }
        false
    }

    /// Merges every entry of `other` into `self` (union semantics —
    /// commutative and associative up to the final top-K).
    pub fn merge(&mut self, other: &TopKAccumulator) {
        for &n in &other.entries {
            self.offer(n);
        }
    }

    /// The current entries, best-first.
    pub fn entries(&self) -> &[Neighbor] {
        &self.entries
    }

    /// Consumes the accumulator, returning the best-first entry list.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.entries
    }

    /// Serializes to the on-disk row shape of
    /// [`knn_store::record_file::write_user_lists`].
    pub fn to_row(&self) -> Vec<(u32, f32)> {
        self.entries.iter().map(|n| (n.id.raw(), n.sim)).collect()
    }

    /// Rebuilds from an on-disk row.
    ///
    /// Rows written by [`TopKAccumulator::to_row`] are already in the
    /// deterministic best-first order with unique ids and length ≤ K;
    /// such rows are adopted directly (the hot path — partition loads
    /// rebuild every resident accumulator). Anything else falls back
    /// to offering entry by entry, which produces the same result for
    /// any well-formed multiset.
    pub fn from_row(k: usize, row: &[(u32, f32)]) -> Self {
        assert!(k > 0, "K must be positive");
        let sorted_unique = row.len() <= k
            && row.windows(2).all(|w| {
                Neighbor::new(UserId::new(w[0].0), w[0].1)
                    .beats(&Neighbor::new(UserId::new(w[1].0), w[1].1))
            });
        if sorted_unique {
            return TopKAccumulator {
                k,
                entries: row
                    .iter()
                    .map(|&(id, sim)| Neighbor::new(UserId::new(id), sim))
                    .collect(),
            };
        }
        let mut acc = TopKAccumulator::new(k);
        for &(id, sim) in row {
            acc.offer(Neighbor::new(UserId::new(id), sim));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u32, sim: f32) -> Neighbor {
        Neighbor::new(UserId::new(id), sim)
    }

    #[test]
    fn keeps_only_top_k() {
        let mut acc = TopKAccumulator::new(3);
        for i in 0..10 {
            acc.offer(nb(i, i as f32 / 10.0));
        }
        let v = acc.into_sorted();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], nb(9, 0.9));
        assert_eq!(v[2], nb(7, 0.7));
    }

    #[test]
    fn dedups_by_best_score() {
        let mut acc = TopKAccumulator::new(3);
        acc.offer(nb(5, 0.2));
        acc.offer(nb(5, 0.8));
        acc.offer(nb(5, 0.5));
        assert_eq!(acc.entries(), &[nb(5, 0.8)]);
    }

    #[test]
    fn order_independence() {
        let cands = vec![
            nb(1, 0.5),
            nb(2, 0.5),
            nb(3, 0.9),
            nb(4, 0.1),
            nb(1, 0.7),
            nb(5, 0.5),
        ];
        let forward = {
            let mut a = TopKAccumulator::new(3);
            for &c in &cands {
                a.offer(c);
            }
            a.into_sorted()
        };
        let backward = {
            let mut a = TopKAccumulator::new(3);
            for &c in cands.iter().rev() {
                a.offer(c);
            }
            a.into_sorted()
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = TopKAccumulator::new(2);
        a.offer(nb(1, 0.9));
        a.offer(nb(2, 0.1));
        let mut b = TopKAccumulator::new(2);
        b.offer(nb(3, 0.5));
        b.offer(nb(2, 0.6));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.entries(), ba.entries());
    }

    #[test]
    fn row_round_trip() {
        let mut acc = TopKAccumulator::new(4);
        for c in [nb(7, 0.7), nb(1, 0.9), nb(3, -0.2)] {
            acc.offer(c);
        }
        let row = acc.to_row();
        let back = TopKAccumulator::from_row(4, &row);
        assert_eq!(back.entries(), acc.entries());
    }

    #[test]
    fn ties_break_by_id() {
        let mut acc = TopKAccumulator::new(2);
        acc.offer(nb(9, 0.5));
        acc.offer(nb(3, 0.5));
        acc.offer(nb(6, 0.5));
        let ids: Vec<u32> = acc.entries().iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![3, 6]);
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_rejected() {
        let _ = TopKAccumulator::new(0);
    }

    #[test]
    fn threshold_appears_only_when_full() {
        let mut acc = TopKAccumulator::new(2);
        assert!(!acc.is_full());
        assert_eq!(acc.threshold(), None);
        acc.offer(nb(1, 0.9));
        assert_eq!(acc.threshold(), None);
        acc.offer(nb(2, 0.4));
        assert!(acc.is_full());
        assert_eq!(acc.threshold(), Some(nb(2, 0.4)));
        acc.offer(nb(3, 0.6));
        assert_eq!(acc.threshold(), Some(nb(3, 0.6)));
    }

    /// The pruning contract: a candidate that does not beat the
    /// threshold can be dropped without changing the accumulator.
    #[test]
    fn candidates_below_threshold_never_change_a_full_accumulator() {
        let mut acc = TopKAccumulator::new(3);
        for c in [nb(1, 0.9), nb(2, 0.7), nb(3, 0.5)] {
            acc.offer(c);
        }
        let threshold = acc.threshold().unwrap();
        let before = acc.clone();
        for cand in [nb(9, 0.5), nb(4, 0.4), nb(8, -1.0)] {
            assert!(!cand.beats(&threshold));
            acc.offer(cand);
            assert_eq!(acc, before, "sub-threshold candidate changed the set");
        }
        // While one that beats it does change the set.
        assert!(nb(4, 0.6).beats(&threshold));
        assert!(acc.offer(nb(4, 0.6)));
    }
}
