//! Phase 5: lazy profile updates.
//!
//! Profile changes arriving *during* iteration `t` are appended to the
//! backend's durable update log (the paper's queue `q`) and are **not**
//! visible to the similarity computation of iteration `t`. At the end
//! of the iteration this phase drains the log, rewrites only the
//! affected partition profile streams, and leaves the log empty for
//! iteration `t+1`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use knn_graph::UserId;
use knn_sim::{Profile, ProfileDelta};
use knn_store::backend::{append_delta, read_deltas, read_user_lists, write_user_lists};
use knn_store::delta_log::decode_deltas;
use knn_store::{CommitTarget, CommitTxn, StorageBackend, StoreError, StreamId};

use crate::par;
use crate::partition::Partitioning;
use crate::EngineError;

/// The engine-facing update queue: validated appends during the
/// iteration, bulk apply at its end. The queued deltas live in the
/// storage backend's update log, so they survive a crash on any
/// durable backend.
#[derive(Debug)]
pub struct UpdateQueue {
    num_users: usize,
}

/// Summary of one phase-5 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase5Stats {
    /// Deltas applied.
    pub updates_applied: u64,
    /// Partition streams rewritten.
    pub partitions_rewritten: u64,
}

impl UpdateQueue {
    /// Creates the queue facade for a computation over `num_users`
    /// users (the log itself lives in the backend).
    pub fn new(num_users: usize) -> Self {
        UpdateQueue { num_users }
    }

    /// Queues one update for the next iteration boundary.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidUpdate`] for an out-of-range user
    /// or any non-finite weight (`Set` and `Replace` alike, via
    /// [`DeltaOp::weights_finite`]), [`EngineError::Store`] on I/O
    /// failure.
    pub fn queue(
        &mut self,
        delta: &ProfileDelta,
        backend: &dyn StorageBackend,
    ) -> Result<(), EngineError> {
        if delta.user.index() >= self.num_users {
            return Err(EngineError::update(format!(
                "user {} out of range (n={})",
                delta.user, self.num_users
            )));
        }
        if !delta.op.weights_finite() {
            return Err(EngineError::update(format!(
                "non-finite weight in update for user {}",
                delta.user
            )));
        }
        append_delta(backend, delta)?;
        Ok(())
    }

    /// Number of queued updates (reads the log).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on read failure.
    pub fn pending(&self, backend: &dyn StorageBackend) -> Result<usize, EngineError> {
        Ok(read_deltas(backend)?.len())
    }

    /// Drains the log into the partition profile streams: groups
    /// deltas by the owning partition, rewrites each touched stream
    /// once — touched partitions are rebuilt and written across up to
    /// `threads` workers, each owning its (disjoint) stream, so peak
    /// memory stays `O(threads × partition)` and the persisted bytes
    /// are thread-count-invariant — and truncates the log.
    ///
    /// Returns the run statistics, the **sorted, deduplicated** set of
    /// users whose profile changed — the input of the engine's
    /// per-user dirty bits: every similarity score involving one of
    /// these users is stale from the next iteration on — and the raw
    /// log bytes this call consumed.
    ///
    /// With `txn` present the commit protocol is active: each touched
    /// profile stream is backed up (pre-image staged) before the
    /// rewrite loop, and the log is **not** truncated here — the
    /// engine truncates it inside [`CommitTxn::commit`], where the
    /// consumed-prefix record makes an interrupted truncation
    /// recoverable. With `txn == None` the legacy behavior is exact:
    /// rewrite, then truncate.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure or corrupt
    /// streams.
    pub fn apply_all(
        &mut self,
        partitioning: &Partitioning,
        backend: &dyn StorageBackend,
        threads: usize,
        txn: Option<&mut CommitTxn>,
    ) -> Result<(Phase5Stats, Vec<u32>, Vec<u8>), EngineError> {
        // One raw read serves both decoding and the consumed-bytes
        // return (`read_deltas` is exactly this read + decode, so the
        // metering is unchanged).
        let raw = backend.read_updates()?;
        let deltas = decode_deltas(
            &raw,
            &PathBuf::from(format!("{}:updates.log", backend.name())),
        )?;
        if deltas.is_empty() {
            return Ok((Phase5Stats::default(), Vec::new(), raw));
        }
        let mut by_partition: BTreeMap<u32, Vec<&ProfileDelta>> = BTreeMap::new();
        let mut updated_users: Vec<u32> = Vec::with_capacity(deltas.len());
        for d in &deltas {
            by_partition
                .entry(partitioning.partition_of(d.user))
                .or_default()
                .push(d);
            updated_users.push(d.user.raw());
        }
        updated_users.sort_unstable();
        updated_users.dedup();
        let result = Phase5Stats {
            updates_applied: deltas.len() as u64,
            partitions_rewritten: by_partition.len() as u64,
        };
        // Each touched partition reads its profile stream, applies its
        // deltas in arrival order, and rewrites the stream — fully
        // independently (no other group touches that stream), so the
        // groups run concurrently and nothing is buffered past its
        // own write.
        let groups: Vec<(u32, Vec<&ProfileDelta>)> = by_partition.into_iter().collect();
        let committing = if let Some(txn) = txn {
            // Pre-images are staged sequentially, in partition order,
            // before any worker mutates — the backup traffic is
            // thread-count-invariant and every touched stream is
            // restorable whatever op the crash lands on.
            for (p, _) in &groups {
                txn.backup(backend, CommitTarget::Profiles(*p))?;
            }
            true
        } else {
            false
        };
        par::run_indexed(groups.len(), threads, |idx| {
            let (p, partition_deltas) = &groups[idx];
            let stream = StreamId::Profiles(*p);
            let rows = read_user_lists(backend, stream)?;
            let mut profiles: BTreeMap<u32, Profile> = BTreeMap::new();
            for (user, row) in rows {
                let profile = Profile::from_unsorted_pairs(row).map_err(|e| {
                    EngineError::Store(StoreError::corrupt(
                        backend.describe(stream),
                        format!("invalid profile for user {user}: {e}"),
                    ))
                })?;
                profiles.insert(user, profile);
            }
            for d in partition_deltas {
                let profile = profiles.get_mut(&d.user.raw()).ok_or_else(|| {
                    EngineError::Store(StoreError::corrupt(
                        backend.describe(stream),
                        format!("user {} missing from partition {p}", d.user),
                    ))
                })?;
                d.op.apply(profile);
            }
            let new_rows: Vec<(u32, Vec<(u32, f32)>)> = profiles
                .into_iter()
                .map(|(user, profile)| (user, profile.iter().map(|(i, w)| (i.raw(), w)).collect()))
                .collect();
            write_user_lists(backend, stream, &new_rows)?;
            Ok(())
        })?;
        if !committing {
            backend.truncate_updates()?;
        }
        Ok((result, updated_users, raw))
    }

    /// Reads one user's current stored profile (diagnostics and
    /// examples; the engine itself never random-accesses profiles).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure and
    /// [`EngineError::InputMismatch`] for an unknown user.
    pub fn read_profile(
        user: UserId,
        partitioning: &Partitioning,
        backend: &dyn StorageBackend,
    ) -> Result<Profile, EngineError> {
        let p = partitioning.partition_of(user);
        let stream = StreamId::Profiles(p);
        let rows = read_user_lists(backend, stream)?;
        for (u, row) in rows {
            if u == user.raw() {
                return Profile::from_unsorted_pairs(row).map_err(|e| {
                    EngineError::Store(StoreError::corrupt(
                        backend.describe(stream),
                        format!("invalid profile for user {u}: {e}"),
                    ))
                });
            }
        }
        Err(EngineError::input(format!(
            "user {user} not found in partition {p}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::reshard_profiles;
    use knn_sim::{DeltaOp, ItemId, ProfileStore};
    use knn_store::MemBackend;

    fn setup(n: usize, m: usize) -> (MemBackend, Partitioning, UpdateQueue) {
        let b = MemBackend::new();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        let store = ProfileStore::new(n);
        reshard_profiles(&b, None, &p, Some(&store), 1).unwrap();
        let q = UpdateQueue::new(n);
        (b, p, q)
    }

    #[test]
    fn queue_validates_user_and_weight() {
        let (b, _, mut q) = setup(4, 2);
        assert!(matches!(
            q.queue(&ProfileDelta::set(UserId::new(9), ItemId::new(0), 1.0), &b),
            Err(EngineError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            q.queue(
                &ProfileDelta::set(UserId::new(0), ItemId::new(0), f32::NAN),
                &b
            ),
            Err(EngineError::InvalidUpdate { .. })
        ));
        assert!(q
            .queue(&ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0), &b)
            .is_ok());
        assert_eq!(q.pending(&b).unwrap(), 1);
    }

    #[test]
    fn apply_rewrites_only_touched_partitions() {
        let (b, p, mut q) = setup(6, 3);
        // Users 0 and 3 are both in partition 0; only it is touched.
        q.queue(&ProfileDelta::set(UserId::new(0), ItemId::new(5), 2.0), &b)
            .unwrap();
        q.queue(&ProfileDelta::set(UserId::new(3), ItemId::new(6), 3.0), &b)
            .unwrap();
        let (st, updated, _) = q.apply_all(&p, &b, 1, None).unwrap();
        assert_eq!(st.updates_applied, 2);
        assert_eq!(st.partitions_rewritten, 1);
        assert_eq!(updated, vec![0, 3], "updated users sorted and deduped");
        let profile = UpdateQueue::read_profile(UserId::new(0), &p, &b).unwrap();
        assert_eq!(profile.get(ItemId::new(5)), Some(2.0));
    }

    #[test]
    fn apply_preserves_arrival_order_per_user() {
        let (b, p, mut q) = setup(2, 1);
        let u = UserId::new(0);
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 1.0), &b)
            .unwrap();
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 2.0), &b)
            .unwrap();
        q.queue(&ProfileDelta::remove(u, ItemId::new(1)), &b)
            .unwrap();
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 7.0), &b)
            .unwrap();
        let (_, updated, _) = q.apply_all(&p, &b, 1, None).unwrap();
        assert_eq!(
            updated,
            vec![0],
            "four deltas to one user dedup to one entry"
        );
        let profile = UpdateQueue::read_profile(u, &p, &b).unwrap();
        assert_eq!(profile.get(ItemId::new(1)), Some(7.0));
    }

    #[test]
    fn queue_is_empty_after_apply() {
        let (b, p, mut q) = setup(2, 1);
        q.queue(&ProfileDelta::set(UserId::new(1), ItemId::new(0), 1.0), &b)
            .unwrap();
        q.apply_all(&p, &b, 1, None).unwrap();
        assert_eq!(q.pending(&b).unwrap(), 0);
        let (st, updated, _) = q.apply_all(&p, &b, 1, None).unwrap();
        assert_eq!(st.updates_applied, 0);
        assert!(updated.is_empty());
    }

    #[test]
    fn replace_and_clear_apply() {
        let (b, p, mut q) = setup(2, 1);
        let u = UserId::new(0);
        let full = Profile::from_unsorted_pairs(vec![(1, 1.0), (2, 2.0)]).unwrap();
        q.queue(&ProfileDelta::replace(u, full.clone()), &b)
            .unwrap();
        q.apply_all(&p, &b, 1, None).unwrap();
        assert_eq!(UpdateQueue::read_profile(u, &p, &b).unwrap(), full);
        q.queue(&ProfileDelta::new(u, DeltaOp::Clear), &b).unwrap();
        q.apply_all(&p, &b, 1, None).unwrap();
        assert!(UpdateQueue::read_profile(u, &p, &b).unwrap().is_empty());
    }

    /// The phase-5 determinism leg: identical rewritten streams and
    /// stats at every thread count.
    #[test]
    fn thread_count_does_not_change_apply_output() {
        let mut reference: Option<(Phase5Stats, Vec<Vec<u8>>)> = None;
        for threads in [1usize, 2, 4] {
            let (b, p, mut q) = setup(12, 4);
            for u in 0..12u32 {
                q.queue(
                    &ProfileDelta::set(UserId::new(u), ItemId::new(u % 3), u as f32 + 0.5),
                    &b,
                )
                .unwrap();
            }
            let (st, _, _) = q.apply_all(&p, &b, threads, None).unwrap();
            let streams: Vec<Vec<u8>> = (0..4u32)
                .map(|part| b.read(StreamId::Profiles(part)).unwrap())
                .collect();
            match &reference {
                None => reference = Some((st, streams)),
                Some((ref_st, ref_streams)) => {
                    assert_eq!(ref_st, &st, "threads={threads}");
                    assert_eq!(ref_streams, &streams, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn commit_mode_stages_preimages_and_defers_truncation() {
        let (b, p, mut q) = setup(6, 3);
        let before = b.read(StreamId::Profiles(0)).unwrap();
        q.queue(&ProfileDelta::set(UserId::new(0), ItemId::new(5), 2.0), &b)
            .unwrap();
        let mut txn = CommitTxn::new(7);
        let (st, _, raw) = q.apply_all(&p, &b, 1, Some(&mut txn)).unwrap();
        assert_eq!(st.partitions_rewritten, 1);
        // Only the touched partition is staged, under the txn epoch,
        // holding the pre-image; the log is left for the commit step.
        assert!(b.exists(StreamId::Staged(CommitTarget::Profiles(0), 7)));
        assert!(!b.exists(StreamId::Staged(CommitTarget::Profiles(1), 7)));
        assert_eq!(
            b.read(StreamId::Staged(CommitTarget::Profiles(0), 7))
                .unwrap(),
            before
        );
        assert_eq!(b.read_updates().unwrap(), raw);
        assert!(!raw.is_empty());
        assert_eq!(
            q.pending(&b).unwrap(),
            1,
            "log not truncated in commit mode"
        );
    }

    #[test]
    fn read_profile_unknown_user_errors() {
        let (b, p, _q) = setup(2, 1);
        assert!(UpdateQueue::read_profile(UserId::new(0), &p, &b).is_ok());
        assert!(UpdateQueue::read_profile(UserId::new(1), &p, &b).is_ok());
    }
}
