//! Phase 5: lazy profile updates.
//!
//! Profile changes arriving *during* iteration `t` are appended to an
//! on-disk queue (the paper's queue `q`) and are **not** visible to the
//! similarity computation of iteration `t`. At the end of the
//! iteration this phase drains the queue, rewrites only the affected
//! partition profile files, and leaves the queue empty for iteration
//! `t+1`.

use std::collections::BTreeMap;
use std::sync::Arc;

use knn_graph::UserId;
use knn_sim::{DeltaOp, Profile, ProfileDelta};
use knn_store::delta_log::DeltaLog;
use knn_store::record_file::{read_user_lists, write_user_lists};
use knn_store::{IoStats, RecordKind, StoreError, WorkingDir};

use crate::partition::Partitioning;
use crate::EngineError;

/// The engine-facing update queue: validated appends during the
/// iteration, bulk apply at its end.
#[derive(Debug)]
pub struct UpdateQueue {
    log: DeltaLog,
    num_users: usize,
}

/// Summary of one phase-5 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase5Stats {
    /// Deltas applied.
    pub updates_applied: u64,
    /// Partition files rewritten.
    pub partitions_rewritten: u64,
}

impl UpdateQueue {
    /// Opens the queue backing file under `workdir`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] if the log cannot be opened.
    pub fn open(workdir: &WorkingDir, num_users: usize) -> Result<Self, EngineError> {
        Ok(UpdateQueue {
            log: DeltaLog::open(workdir.updates_path())?,
            num_users,
        })
    }

    /// Queues one update for the next iteration boundary.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidUpdate`] for an out-of-range user
    /// or a non-finite `Set` weight, [`EngineError::Store`] on I/O
    /// failure.
    pub fn queue(&mut self, delta: &ProfileDelta, stats: &IoStats) -> Result<(), EngineError> {
        if delta.user.index() >= self.num_users {
            return Err(EngineError::update(format!(
                "user {} out of range (n={})",
                delta.user, self.num_users
            )));
        }
        if let DeltaOp::Set(item, weight) = &delta.op {
            if !weight.is_finite() {
                return Err(EngineError::update(format!(
                    "non-finite weight {weight} for item {item} of user {}",
                    delta.user
                )));
            }
        }
        self.log.append(delta, stats)?;
        Ok(())
    }

    /// Number of queued updates (reads the log).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on read failure.
    pub fn pending(&self, stats: &IoStats) -> Result<usize, EngineError> {
        Ok(self.log.len(stats)?)
    }

    /// Drains the queue into the partition profile files: groups
    /// deltas by the owning partition, rewrites each touched file once,
    /// and truncates the queue.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure or corrupt files.
    pub fn apply_all(
        &mut self,
        partitioning: &Partitioning,
        workdir: &WorkingDir,
        stats: &Arc<IoStats>,
    ) -> Result<Phase5Stats, EngineError> {
        let deltas = self.log.read_all(stats)?;
        if deltas.is_empty() {
            return Ok(Phase5Stats::default());
        }
        let mut by_partition: BTreeMap<u32, Vec<&ProfileDelta>> = BTreeMap::new();
        for d in &deltas {
            by_partition
                .entry(partitioning.partition_of(d.user))
                .or_default()
                .push(d);
        }
        let mut result = Phase5Stats {
            updates_applied: deltas.len() as u64,
            ..Default::default()
        };
        for (p, partition_deltas) in by_partition {
            let path = workdir.profiles_path(p);
            let rows = read_user_lists(&path, RecordKind::Profiles, stats)?;
            let mut profiles: BTreeMap<u32, Profile> = BTreeMap::new();
            for (user, row) in rows {
                let profile = Profile::from_unsorted_pairs(row).map_err(|e| {
                    EngineError::Store(StoreError::corrupt(
                        &path,
                        format!("invalid profile for user {user}: {e}"),
                    ))
                })?;
                profiles.insert(user, profile);
            }
            for d in partition_deltas {
                let profile = profiles.get_mut(&d.user.raw()).ok_or_else(|| {
                    EngineError::Store(StoreError::corrupt(
                        &path,
                        format!("user {} missing from partition {p}", d.user),
                    ))
                })?;
                d.op.apply(profile);
            }
            let new_rows: Vec<(u32, Vec<(u32, f32)>)> = profiles
                .into_iter()
                .map(|(user, profile)| (user, profile.iter().map(|(i, w)| (i.raw(), w)).collect()))
                .collect();
            write_user_lists(&path, RecordKind::Profiles, &new_rows, stats)?;
            result.partitions_rewritten += 1;
        }
        self.log.truncate()?;
        Ok(result)
    }

    /// Reads one user's current on-disk profile (diagnostics and
    /// examples; the engine itself never random-accesses profiles).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure and
    /// [`EngineError::InputMismatch`] for an unknown user.
    pub fn read_profile(
        user: UserId,
        partitioning: &Partitioning,
        workdir: &WorkingDir,
        stats: &IoStats,
    ) -> Result<Profile, EngineError> {
        let p = partitioning.partition_of(user);
        let path = workdir.profiles_path(p);
        let rows = read_user_lists(&path, RecordKind::Profiles, stats)?;
        for (u, row) in rows {
            if u == user.raw() {
                return Profile::from_unsorted_pairs(row).map_err(|e| {
                    EngineError::Store(StoreError::corrupt(
                        &path,
                        format!("invalid profile for user {u}: {e}"),
                    ))
                });
            }
        }
        Err(EngineError::input(format!(
            "user {user} not found in partition {p}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::reshard_profiles;
    use knn_sim::{ItemId, ProfileStore};

    fn setup(n: usize, m: usize) -> (WorkingDir, Partitioning, Arc<IoStats>, UpdateQueue) {
        let wd = WorkingDir::temp("phase5").unwrap();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        let stats = Arc::new(IoStats::new());
        let store = ProfileStore::new(n);
        reshard_profiles(&wd, None, &p, Some(&store), &stats).unwrap();
        let q = UpdateQueue::open(&wd, n).unwrap();
        (wd, p, stats, q)
    }

    #[test]
    fn queue_validates_user_and_weight() {
        let (wd, _, stats, mut q) = setup(4, 2);
        assert!(matches!(
            q.queue(
                &ProfileDelta::set(UserId::new(9), ItemId::new(0), 1.0),
                &stats
            ),
            Err(EngineError::InvalidUpdate { .. })
        ));
        assert!(matches!(
            q.queue(
                &ProfileDelta::set(UserId::new(0), ItemId::new(0), f32::NAN),
                &stats
            ),
            Err(EngineError::InvalidUpdate { .. })
        ));
        assert!(q
            .queue(
                &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0),
                &stats
            )
            .is_ok());
        assert_eq!(q.pending(&stats).unwrap(), 1);
        wd.destroy().unwrap();
    }

    #[test]
    fn apply_rewrites_only_touched_partitions() {
        let (wd, p, stats, mut q) = setup(6, 3);
        // Users 0 and 3 are both in partition 0; only it is touched.
        q.queue(
            &ProfileDelta::set(UserId::new(0), ItemId::new(5), 2.0),
            &stats,
        )
        .unwrap();
        q.queue(
            &ProfileDelta::set(UserId::new(3), ItemId::new(6), 3.0),
            &stats,
        )
        .unwrap();
        let st = q.apply_all(&p, &wd, &stats).unwrap();
        assert_eq!(st.updates_applied, 2);
        assert_eq!(st.partitions_rewritten, 1);
        let profile = UpdateQueue::read_profile(UserId::new(0), &p, &wd, &stats).unwrap();
        assert_eq!(profile.get(ItemId::new(5)), Some(2.0));
        wd.destroy().unwrap();
    }

    #[test]
    fn apply_preserves_arrival_order_per_user() {
        let (wd, p, stats, mut q) = setup(2, 1);
        let u = UserId::new(0);
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 1.0), &stats)
            .unwrap();
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 2.0), &stats)
            .unwrap();
        q.queue(&ProfileDelta::remove(u, ItemId::new(1)), &stats)
            .unwrap();
        q.queue(&ProfileDelta::set(u, ItemId::new(1), 7.0), &stats)
            .unwrap();
        q.apply_all(&p, &wd, &stats).unwrap();
        let profile = UpdateQueue::read_profile(u, &p, &wd, &stats).unwrap();
        assert_eq!(profile.get(ItemId::new(1)), Some(7.0));
        wd.destroy().unwrap();
    }

    #[test]
    fn queue_is_empty_after_apply() {
        let (wd, p, stats, mut q) = setup(2, 1);
        q.queue(
            &ProfileDelta::set(UserId::new(1), ItemId::new(0), 1.0),
            &stats,
        )
        .unwrap();
        q.apply_all(&p, &wd, &stats).unwrap();
        assert_eq!(q.pending(&stats).unwrap(), 0);
        let st = q.apply_all(&p, &wd, &stats).unwrap();
        assert_eq!(st.updates_applied, 0);
        wd.destroy().unwrap();
    }

    #[test]
    fn replace_and_clear_apply() {
        let (wd, p, stats, mut q) = setup(2, 1);
        let u = UserId::new(0);
        let full = Profile::from_unsorted_pairs(vec![(1, 1.0), (2, 2.0)]).unwrap();
        q.queue(&ProfileDelta::replace(u, full.clone()), &stats)
            .unwrap();
        q.apply_all(&p, &wd, &stats).unwrap();
        assert_eq!(UpdateQueue::read_profile(u, &p, &wd, &stats).unwrap(), full);
        q.queue(&ProfileDelta::new(u, DeltaOp::Clear), &stats)
            .unwrap();
        q.apply_all(&p, &wd, &stats).unwrap();
        assert!(UpdateQueue::read_profile(u, &p, &wd, &stats)
            .unwrap()
            .is_empty());
        wd.destroy().unwrap();
    }

    #[test]
    fn read_profile_unknown_user_errors() {
        let (wd, p, stats, _q) = setup(2, 1);
        assert!(UpdateQueue::read_profile(UserId::new(0), &p, &wd, &stats).is_ok());
        // Partition exists but the user row does not (out-of-range id
        // still maps to a partition via modulo — craft a missing user).
        let err = UpdateQueue::read_profile(UserId::new(1), &p, &wd, &stats);
        assert!(err.is_ok(), "user 1 exists");
        wd.destroy().unwrap();
    }
}
