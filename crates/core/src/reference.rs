//! In-memory reference implementation of one KNN iteration.
//!
//! Computes the exact `G(t) → G(t+1)` transition the out-of-core
//! engine must produce — same candidate set (direct neighbors plus
//! two-hop neighbors), same similarity, same deterministic
//! tie-breaking — but with everything in RAM and no partitioning. The
//! integration tests assert byte-for-byte equality between this and
//! the five-phase engine.

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{ProfileStore, Similarity};

use crate::topk::TopKAccumulator;

/// Computes `G(t+1)` from `G(t)` in memory.
///
/// Candidates for user `s` are its out-neighbors and its neighbors'
/// out-neighbors in `graph`; each unique `(s, d)` pair is scored once
/// with `measure`. With `include_reverse`, every pair additionally
/// offers `s` as a candidate to `d`.
///
/// # Panics
///
/// Panics if `profiles` has fewer users than `graph` has vertices.
pub fn reference_iteration<M: Similarity>(
    graph: &KnnGraph,
    profiles: &ProfileStore,
    measure: &M,
    k: usize,
    include_reverse: bool,
) -> KnnGraph {
    let n = graph.num_vertices();
    assert!(
        profiles.num_users() >= n,
        "profiles must cover every vertex"
    );

    let tuples = crate::phase2::reference_tuple_set(graph);
    let mut accums: Vec<TopKAccumulator> = (0..n).map(|_| TopKAccumulator::new(k)).collect();

    for &(s, d) in &tuples {
        let sim = measure.score(profiles.get(UserId::new(s)), profiles.get(UserId::new(d)));
        accums[s as usize].offer(Neighbor::new(UserId::new(d), sim));
        if include_reverse {
            accums[d as usize].offer(Neighbor::new(UserId::new(s), sim));
        }
    }

    let mut next = KnnGraph::new(n, k);
    for (u, acc) in accums.into_iter().enumerate() {
        next.set_neighbors(UserId::new(u as u32), acc.into_sorted())
            .expect("accumulator output satisfies KNN invariants");
    }
    next
}

/// Runs `iterations` reference iterations from `initial`.
///
/// # Panics
///
/// Same as [`reference_iteration`].
pub fn reference_run<M: Similarity>(
    initial: &KnnGraph,
    profiles: &ProfileStore,
    measure: &M,
    k: usize,
    include_reverse: bool,
    iterations: usize,
) -> KnnGraph {
    let mut g = initial.clone();
    for _ in 0..iterations {
        g = reference_iteration(&g, profiles, measure, k, include_reverse);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::{ItemId, Measure};

    fn chain_profiles(n: usize) -> ProfileStore {
        let mut store = ProfileStore::new(n);
        for u in 0..n as u32 {
            let p = store.get_mut(UserId::new(u));
            p.set(ItemId::new(u), 1.0);
            p.set(ItemId::new(u + 1), 1.0);
        }
        store
    }

    #[test]
    fn two_hop_candidates_enter_the_graph() {
        // 0→1→2; profile overlap makes 2 a better neighbor for 0 than
        // nothing: G(1)[0] must contain both 1 and 2.
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        g.insert(UserId::new(1), Neighbor::unscored(UserId::new(2)));
        let profiles = chain_profiles(3);
        let next = reference_iteration(&g, &profiles, &Measure::Cosine, 2, false);
        let ids: Vec<u32> = next
            .neighbors(UserId::new(0))
            .iter()
            .map(|n| n.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 2], "direct (higher sim) first, then 2-hop");
    }

    #[test]
    fn respects_k_bound() {
        let g = KnnGraph::random_init(20, 6, 1);
        let profiles = chain_profiles(20);
        let next = reference_iteration(&g, &profiles, &Measure::Cosine, 3, false);
        for v in 0..20u32 {
            assert!(next.neighbors(UserId::new(v)).len() <= 3);
        }
    }

    #[test]
    fn users_with_no_outedges_end_up_empty() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = chain_profiles(3);
        let next = reference_iteration(&g, &profiles, &Measure::Cosine, 2, false);
        assert!(next.neighbors(UserId::new(2)).is_empty());
        assert!(next.neighbors(UserId::new(1)).is_empty());
    }

    #[test]
    fn reverse_offers_fill_in_isolated_users() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = chain_profiles(3);
        let next = reference_iteration(&g, &profiles, &Measure::Cosine, 2, true);
        assert_eq!(next.neighbors(UserId::new(1)).len(), 1);
        assert_eq!(next.neighbors(UserId::new(1))[0].id, UserId::new(0));
    }

    #[test]
    fn total_similarity_never_decreases_over_iterations() {
        // The candidate set always contains the current neighbors, so
        // each user's list can only improve (or stay) under a fixed
        // profile set.
        let profiles = chain_profiles(30);
        let mut g = reference_iteration(
            &KnnGraph::random_init(30, 4, 2),
            &profiles,
            &Measure::Cosine,
            4,
            false,
        );
        let mut prev = g.total_similarity();
        for _ in 0..4 {
            g = reference_iteration(&g, &profiles, &Measure::Cosine, 4, false);
            let cur = g.total_similarity();
            assert!(cur + 1e-9 >= prev, "similarity regressed: {cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn reference_run_composes_iterations() {
        let profiles = chain_profiles(15);
        let g0 = KnnGraph::random_init(15, 3, 4);
        let two_steps = reference_run(&g0, &profiles, &Measure::Cosine, 3, false, 2);
        let manual = reference_iteration(
            &reference_iteration(&g0, &profiles, &Measure::Cosine, 3, false),
            &profiles,
            &Measure::Cosine,
            3,
            false,
        );
        assert_eq!(two_steps, manual);
    }
}
