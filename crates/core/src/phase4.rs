//! Phase 4: out-of-core KNN computation.
//!
//! Walks the phase-3 schedule with a bounded partition cache (two
//! slots by default, exactly the paper's memory constraint), scores
//! every tuple of the resident pair's buckets — across a persistent
//! worker pool when `threads > 1` — and folds the scores into per-user
//! top-K accumulators. Accumulator state belongs to its partition: it
//! is loaded and saved with the partition, so peak memory stays
//! `O(cache_slots × partition)`.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel;
use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{Measure, Profile, Similarity};
use knn_store::backend::{read_pairs, read_user_lists, write_user_lists};
use knn_store::{CacheCounters, SlotCache, StorageBackend, StoreError, StreamId};

use crate::partition::Partitioning;
use crate::topk::TopKAccumulator;
use crate::traversal::Schedule;
use crate::{EngineError, PiGraph};

/// Buckets smaller than this are scored inline even when a worker pool
/// exists (the dispatch overhead would dominate).
const PARALLEL_THRESHOLD: usize = 2048;

/// Options of one phase-4 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase4Options {
    /// The KNN bound `K`.
    pub k: usize,
    /// Similarity measure.
    pub measure: Measure,
    /// Worker threads for similarity scoring.
    pub threads: usize,
    /// Partition cache slots (≥ 2).
    pub cache_slots: usize,
    /// Offer each tuple's source as a candidate to its destination too.
    pub include_reverse: bool,
}

/// Result of one phase-4 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase4Output {
    /// The next KNN graph `G(t+1)`.
    pub graph: KnnGraph,
    /// Partition cache operation counts (the real Table-1 metric).
    pub cache: CacheCounters,
    /// Similarity evaluations performed.
    pub sims_computed: u64,
}

/// One partition's resident state: its users' profiles (read-only
/// during the iteration, shared with scoring workers via `Arc`) and
/// their top-K accumulators (read-write, persisted on unload).
struct PartitionState {
    profiles: Arc<HashMap<u32, Profile>>,
    accums: HashMap<u32, TopKAccumulator>,
    dirty: bool,
}

/// A unit of scoring work: an owned tuple chunk plus shared profile
/// maps, safe to outlive cache evictions.
struct ScoreTask {
    src: Arc<HashMap<u32, Profile>>,
    dst: Arc<HashMap<u32, Profile>>,
    tuples: Vec<(u32, u32)>,
    measure: Measure,
}

fn score_chunk(task: &ScoreTask) -> Vec<(u32, u32, f32)> {
    task.tuples
        .iter()
        .map(|&(s, d)| {
            let sim = task.measure.score(&task.src[&s], &task.dst[&d]);
            (s, d, sim)
        })
        .collect()
}

fn load_state(
    backend: &dyn StorageBackend,
    k: usize,
    p: u32,
) -> Result<PartitionState, EngineError> {
    let profile_rows = read_user_lists(backend, StreamId::Profiles(p))?;
    let mut profiles = HashMap::with_capacity(profile_rows.len());
    for (user, row) in profile_rows {
        let profile = Profile::from_unsorted_pairs(row).map_err(|e| {
            EngineError::Store(StoreError::corrupt(
                backend.describe(StreamId::Profiles(p)),
                format!("invalid profile for user {user}: {e}"),
            ))
        })?;
        profiles.insert(user, profile);
    }
    let accum_rows = read_user_lists(backend, StreamId::Accumulators(p))?;
    let mut accums = HashMap::with_capacity(accum_rows.len());
    for (user, row) in accum_rows {
        accums.insert(user, TopKAccumulator::from_row(k, &row));
    }
    Ok(PartitionState {
        profiles: Arc::new(profiles),
        accums,
        dirty: false,
    })
}

fn unload_state(
    backend: &dyn StorageBackend,
    p: u32,
    state: PartitionState,
) -> Result<(), EngineError> {
    if !state.dirty {
        // Profiles are immutable during the iteration and the
        // accumulators are unchanged: nothing to persist.
        return Ok(());
    }
    let mut rows: Vec<(u32, Vec<(u32, f32)>)> = state
        .accums
        .iter()
        .map(|(&user, acc)| (user, acc.to_row()))
        .collect();
    rows.sort_unstable_by_key(|&(u, _)| u);
    write_user_lists(backend, StreamId::Accumulators(p), &rows)?;
    Ok(())
}

/// Runs phase 4 over the given schedule.
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure or corrupt state
/// streams, and [`EngineError::InputMismatch`] if a tuple references a
/// user missing from its partition's streams.
pub fn run_phase4(
    schedule: &Schedule,
    pi: &PiGraph,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase4Options,
) -> Result<Phase4Output, EngineError> {
    let workers = options.threads.max(1);
    if workers <= 1 {
        return drive(schedule, pi, partitioning, backend, options, None);
    }
    // Persistent worker pool for the whole run: tasks own Arc'd
    // profile maps, so the cache can evict freely while chunks are in
    // flight within a bucket.
    let (task_tx, task_rx) = channel::unbounded::<ScoreTask>();
    let (result_tx, result_rx) = channel::unbounded::<Vec<(u32, u32, f32)>>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    let _ = result_tx.send(score_chunk(&task));
                }
            });
        }
        drop(task_rx);
        drop(result_tx);
        let pool = WorkerPool {
            task_tx,
            result_rx,
            workers,
        };
        drive(schedule, pi, partitioning, backend, options, Some(pool))
    })
}

/// Handle to the scoring pool (senders dropped at end of scope shut
/// the workers down).
struct WorkerPool {
    task_tx: channel::Sender<ScoreTask>,
    result_rx: channel::Receiver<Vec<(u32, u32, f32)>>,
    workers: usize,
}

fn drive(
    schedule: &Schedule,
    pi: &PiGraph,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase4Options,
    pool: Option<WorkerPool>,
) -> Result<Phase4Output, EngineError> {
    let mut cache: SlotCache<PartitionState> =
        SlotCache::new(options.cache_slots).with_io_stats(Arc::clone(backend.stats()));
    let mut sims_computed = 0u64;

    for step in schedule.iter() {
        cache.ensure(
            step.a,
            None,
            |p| load_state(backend, options.k, p),
            |p, s| unload_state(backend, p, s),
        )?;
        if !step.is_self() {
            cache.ensure(
                step.b,
                Some(step.a),
                |p| load_state(backend, options.k, p),
                |p, s| unload_state(backend, p, s),
            )?;
        }
        // Both directed buckets of the pair (one for a self-pair).
        let buckets: &[(u32, u32)] = if step.is_self() {
            &[(step.a, step.a)]
        } else {
            &[(step.a, step.b), (step.b, step.a)]
        };
        for &(src, dst) in buckets {
            if pi.bucket_weight(src, dst) == 0 {
                continue;
            }
            let tuples = read_pairs(backend, StreamId::TupleBucket(src, dst))?;
            let src_profiles = Arc::clone(&cache.get(src).expect("src resident").profiles);
            let dst_profiles = Arc::clone(&cache.get(dst).expect("dst resident").profiles);
            validate_tuples(&tuples, &src_profiles, &dst_profiles)?;
            let scored = match &pool {
                Some(pool) if tuples.len() >= PARALLEL_THRESHOLD => {
                    let chunk = tuples.len().div_ceil(pool.workers);
                    let mut dispatched = 0usize;
                    for part in tuples.chunks(chunk) {
                        pool.task_tx
                            .send(ScoreTask {
                                src: Arc::clone(&src_profiles),
                                dst: Arc::clone(&dst_profiles),
                                tuples: part.to_vec(),
                                measure: options.measure,
                            })
                            .expect("workers alive while the run drives them");
                        dispatched += 1;
                    }
                    let mut out = Vec::with_capacity(tuples.len());
                    for _ in 0..dispatched {
                        out.extend(pool.result_rx.recv().expect("worker delivered its chunk"));
                    }
                    out
                }
                _ => score_chunk(&ScoreTask {
                    src: src_profiles,
                    dst: dst_profiles,
                    tuples,
                    measure: options.measure,
                }),
            };
            sims_computed += scored.len() as u64;
            apply_scores(&mut cache, src, dst, &scored, options.include_reverse);
        }
    }

    cache.flush(|p, s| unload_state(backend, p, s))?;
    let counters = cache.counters();

    // Harvest: fold every partition's accumulator stream into G(t+1).
    let n = partitioning.num_users();
    let mut graph = KnnGraph::new(n, options.k);
    for p in 0..partitioning.num_partitions() as u32 {
        let rows = read_user_lists(backend, StreamId::Accumulators(p))?;
        for (user, row) in rows {
            let neighbors: Vec<Neighbor> = row
                .iter()
                .map(|&(id, sim)| Neighbor::new(UserId::new(id), sim))
                .collect();
            graph.set_neighbors(UserId::new(user), neighbors)?;
        }
    }

    Ok(Phase4Output {
        graph,
        cache: counters,
        sims_computed,
    })
}

/// Checks that every tuple endpoint has a profile row before scoring.
fn validate_tuples(
    tuples: &[(u32, u32)],
    src: &HashMap<u32, Profile>,
    dst: &HashMap<u32, Profile>,
) -> Result<(), EngineError> {
    for &(s, d) in tuples {
        if !src.contains_key(&s) || !dst.contains_key(&d) {
            return Err(EngineError::input(format!(
                "tuple ({s}, {d}) references a user missing from its partition file"
            )));
        }
    }
    Ok(())
}

/// Applies scored tuples to the resident accumulators.
fn apply_scores(
    cache: &mut SlotCache<PartitionState>,
    src: u32,
    dst: u32,
    scored: &[(u32, u32, f32)],
    include_reverse: bool,
) {
    // Forward offers: candidate d for user s (s lives in `src`).
    {
        let state = cache.get_mut(src).expect("src resident");
        for &(s, d, sim) in scored {
            state
                .accums
                .get_mut(&s)
                .expect("accumulator row exists for every partition user")
                .offer(Neighbor::new(UserId::new(d), sim));
        }
        state.dirty = true;
    }
    if include_reverse {
        let state = cache.get_mut(dst).expect("dst resident");
        for &(s, d, sim) in scored {
            state
                .accums
                .get_mut(&d)
                .expect("accumulator row exists for every partition user")
                .offer(Neighbor::new(UserId::new(s), sim));
        }
        state.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::{reshard_profiles, write_partition_edges};
    use crate::phase2::generate_tuples;
    use crate::traversal::Heuristic;
    use knn_sim::ProfileStore;

    fn options(k: usize, threads: usize) -> Phase4Options {
        Phase4Options {
            k,
            measure: Measure::Cosine,
            threads,
            cache_slots: 2,
            include_reverse: false,
        }
    }

    /// Builds a tiny world: n users in m partitions with simple
    /// profiles, a given KNN graph, everything written to the backend.
    fn setup_world(
        g: &KnnGraph,
        profiles: &ProfileStore,
        m: usize,
    ) -> (knn_store::MemBackend, Partitioning, PiGraph) {
        let n = g.num_vertices();
        let b = knn_store::MemBackend::new();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        reshard_profiles(&b, None, &p, Some(profiles), 1).unwrap();
        write_partition_edges(g, &p, &b, 1).unwrap();
        let out = generate_tuples(&p, &b, 1 << 16, 1).unwrap();
        (b, p, out.pi)
    }

    fn line_profiles(n: usize) -> ProfileStore {
        // User u rates items u and u+1: consecutive users overlap.
        let mut store = ProfileStore::new(n);
        for u in 0..n as u32 {
            let p = store.get_mut(UserId::new(u));
            p.set(knn_sim::ItemId::new(u), 1.0);
            p.set(knn_sim::ItemId::new(u + 1), 1.0);
        }
        store
    }

    #[test]
    fn single_pair_scores_and_harvests() {
        // 0 → 1 with overlapping profiles: G(1)[0] must contain 1.
        let mut g = KnnGraph::new(2, 1);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = line_profiles(2);
        let (b, p, pi) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&pi);
        let out = run_phase4(&schedule, &pi, &p, &b, &options(1, 1)).unwrap();
        let nbrs = out.graph.neighbors(UserId::new(0));
        assert_eq!(nbrs.len(), 1);
        assert_eq!(nbrs[0].id, UserId::new(1));
        assert!((nbrs[0].sim - 0.5).abs() < 1e-6, "cosine of half-overlap");
        assert_eq!(out.sims_computed, 1);
    }

    #[test]
    fn result_is_heuristic_independent() {
        let n = 36;
        let g = KnnGraph::random_init(n, 4, 3);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for h in Heuristic::ALL {
            let (b, p, pi) = setup_world(&g, &profiles, 4);
            let schedule = h.schedule(&pi);
            let out = run_phase4(&schedule, &pi, &p, &b, &options(4, 1)).unwrap();
            results.push((h, out.graph));
        }
        for (h, g2) in &results[1..] {
            assert_eq!(g2, &results[0].1, "{h} produced a different G(t+1)");
        }
    }

    #[test]
    fn result_is_thread_count_independent() {
        let n = 48;
        let g = KnnGraph::random_init(n, 5, 7);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for threads in [1, 2, 4] {
            let (b, p, pi) = setup_world(&g, &profiles, 3);
            let schedule = Heuristic::DegreeLowHigh.schedule(&pi);
            let out = run_phase4(&schedule, &pi, &p, &b, &options(5, threads)).unwrap();
            results.push(out.graph);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn parallel_path_is_exercised_above_threshold() {
        // Enough users that at least one bucket crosses the parallel
        // threshold with m=2.
        let n = 600;
        let g = KnnGraph::random_init(n, 6, 2);
        let profiles = line_profiles(n);
        let (b, p, pi) = setup_world(&g, &profiles, 2);
        assert!(
            pi.iter_buckets()
                .any(|(_, w)| w >= PARALLEL_THRESHOLD as u64),
            "test needs a bucket above the parallel threshold"
        );
        let schedule = Heuristic::Sequential.schedule(&pi);
        let sequential = run_phase4(&schedule, &pi, &p, &b, &options(6, 1)).unwrap();
        let parallel = run_phase4(&schedule, &pi, &p, &b, &options(6, 4)).unwrap();
        assert_eq!(sequential.graph, parallel.graph);
        assert_eq!(sequential.sims_computed, parallel.sims_computed);
    }

    #[test]
    fn result_is_partition_count_independent() {
        let n = 30;
        let g = KnnGraph::random_init(n, 3, 11);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for m in [2, 3, 5] {
            let (b, p, pi) = setup_world(&g, &profiles, m);
            let schedule = Heuristic::Sequential.schedule(&pi);
            let out = run_phase4(&schedule, &pi, &p, &b, &options(3, 1)).unwrap();
            results.push(out.graph);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn cache_respects_two_slots_and_counts_ops() {
        let n = 24;
        let g = KnnGraph::random_init(n, 3, 5);
        let profiles = line_profiles(n);
        let (b, p, pi) = setup_world(&g, &profiles, 6);
        let schedule = Heuristic::Sequential.schedule(&pi);
        let predicted = crate::traversal::simulate_schedule_ops(&schedule, 2);
        let out = run_phase4(&schedule, &pi, &p, &b, &options(3, 1)).unwrap();
        assert_eq!(
            out.cache.loads, predicted.loads,
            "dry run must match execution"
        );
        assert_eq!(out.cache.unloads, predicted.unloads);
        assert_eq!(b.stats().snapshot().partition_loads, out.cache.loads);
    }

    #[test]
    fn reverse_offers_add_candidates() {
        // Only edge 0 → 1; with reverse, user 1 also gains candidate 0.
        let mut g = KnnGraph::new(2, 1);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = line_profiles(2);
        let (b, p, pi) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&pi);
        let mut opts = options(1, 1);
        opts.include_reverse = true;
        let out = run_phase4(&schedule, &pi, &p, &b, &opts).unwrap();
        assert_eq!(out.graph.neighbors(UserId::new(1)).len(), 1);
        assert_eq!(out.graph.neighbors(UserId::new(1))[0].id, UserId::new(0));
    }

    #[test]
    fn empty_schedule_yields_empty_graph() {
        let g = KnnGraph::new(4, 2);
        let profiles = ProfileStore::new(4);
        let (b, p, pi) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&pi);
        assert!(schedule.is_empty());
        let out = run_phase4(&schedule, &pi, &p, &b, &options(2, 1)).unwrap();
        assert_eq!(out.graph.num_edges(), 0);
        assert_eq!(out.sims_computed, 0);
    }
}
