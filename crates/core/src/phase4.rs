//! Phase 4: out-of-core KNN computation.
//!
//! Walks the phase-3 schedule with a bounded partition cache (two
//! slots by default, exactly the paper's memory constraint), scores
//! every surviving tuple of the resident pair's buckets — across a
//! persistent worker pool when `threads > 1` — and folds the scores
//! into per-user top-K accumulators. Accumulator state belongs to its
//! partition: it is loaded and saved with the partition, so peak
//! memory stays `O(cache_slots × partition)`.
//!
//! # The scoring funnel
//!
//! Each bucket's tuples pass a driver-side filter before any kernel
//! runs; a tuple is **evaluated** only if it survives all three
//! stages, and every decision is a pure function of iteration-start
//! state plus the deterministic bucket order — so the counters and the
//! resulting graph are identical at every thread count:
//!
//! 0. **Symmetric pair dedup** — phase 2 stores each unordered pair
//!    once ([`BucketMeta`] direction bits recording which directed
//!    candidates exist), so the symmetric kernel runs once per pair
//!    and its score is offered along every recorded direction.
//! 1. **Prepared profiles** — partition loads wrap every profile in a
//!    [`PreparedProfile`], hoisting the per-profile aggregates (L2
//!    norm, weight sum, extrema, block sketches) out of the per-pair
//!    kernels. Scores are bit-identical to the unprepared kernels.
//! 2. **Cross-iteration pair suppression** (`sims_skipped`) — tuples
//!    that were already evaluated last iteration (old generating path,
//!    per [`BucketMeta`]) between users whose standing is provably
//!    unchanged (see [`Phase4Prune`]) are skipped outright; the
//!    accumulator seeds written in phase 1 carry their prior verdict.
//! 3. **Bound-based filtering** (`sims_pruned`) — a surviving tuple is
//!    scored only if its O(1) score ceiling
//!    ([`Measure::upper_bound`]) could still beat the current k-th
//!    entry of the target accumulator(s); thresholds are sampled at
//!    bucket start, which only under-prunes, never over-prunes.
//!
//! Both pruning stages are **exact**: they only ever drop evaluations
//! whose outcome is already decided, so `G(t+1)` is identical with
//! pruning on, off, or partially applicable.

use std::sync::Arc;

use crossbeam::channel;
use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{Measure, PreparedRef, ProfileArena};
use knn_store::backend::{read_tuples, read_user_lists, write_user_lists};
use knn_store::tuple_stream::TupleRow;
use knn_store::{CacheCounters, SlotCache, StorageBackend, StoreError, StreamId};

use crate::fasthash::{map_with_capacity, FxHashMap};
use crate::partition::Partitioning;
use crate::topk::TopKAccumulator;
use crate::traversal::Schedule;
use crate::tuple_table::{meta_bits, BucketMeta};
use crate::{EngineError, PiGraph};

/// Default for [`Phase4Options::parallel_threshold`]: buckets smaller
/// than this are scored inline even when a worker pool exists.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 2048;

/// Options of one phase-4 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase4Options {
    /// The KNN bound `K`.
    pub k: usize,
    /// Similarity measure.
    pub measure: Measure,
    /// Worker threads for similarity scoring.
    pub threads: usize,
    /// Partition cache slots (≥ 2).
    pub cache_slots: usize,
    /// Offer each tuple's source as a candidate to its destination too.
    pub include_reverse: bool,
    /// Minimum surviving-tuple count before a bucket is fanned out to
    /// the worker pool; smaller buckets are scored inline because the
    /// chunking/channel dispatch overhead (task allocation, `Arc`
    /// clones, cross-thread wakeups) dominates the few microseconds of
    /// kernel work they carry. Raise it on machines with slow wakeups
    /// or tiny partitions; lower it when individual kernel evaluations
    /// are unusually expensive.
    pub parallel_threshold: usize,
    /// Skip kernel evaluations whose O(1) score upper bound cannot
    /// beat the current k-th accumulator entry (exact — never changes
    /// the graph).
    pub bound_filter: bool,
}

/// The cross-iteration suppression inputs of one phase-4 run — all
/// derived by the engine at iteration start:
///
/// * `seed_ok` — per user: this user's accumulator was seeded from its
///   current scored neighbor list, and every one of those seed scores
///   is still valid (the user's own profile and every seed neighbor's
///   profile unchanged). Implies the user's prior top-K verdict is
///   replayable, so losing candidates stay losing;
/// * `profile_dirty` — per user: profile changed in the last phase 5,
///   so any score involving this user must be recomputed.
///
/// Combined with the [`BucketMeta`] old-path bits, a directed
/// candidate offer `s → d` is redundant iff it has an old path,
/// `seed_ok[s]`, `!profile_dirty[d]`, and — when reverse offers are
/// on — also `seed_ok[d]`; a canonical tuple whose every direction is
/// redundant is skipped without a kernel evaluation. Under these
/// conditions re-scoring provably cannot change any accumulator, so
/// suppression is exact.
#[derive(Debug, Clone, Copy)]
pub struct Phase4Prune<'a> {
    /// Per-user seed validity (accumulator seeded and scores current).
    pub seed_ok: &'a [bool],
    /// Per-user profile dirtiness from the last phase 5.
    pub profile_dirty: &'a [bool],
}

/// Result of one phase-4 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase4Output {
    /// The next KNN graph `G(t+1)`.
    pub graph: KnnGraph,
    /// Partition cache operation counts (the real Table-1 metric).
    pub cache: CacheCounters,
    /// Similarity evaluations performed.
    pub sims_computed: u64,
    /// Tuples suppressed by cross-iteration pair tracking (already
    /// evaluated last iteration, outcome unchanged).
    pub sims_skipped: u64,
    /// Tuples dropped by the upper-bound filter (ceiling could not
    /// beat the current k-th accumulator entry).
    pub sims_pruned: u64,
}

/// One partition's resident state: its users' profiles in one
/// CSR [`ProfileArena`] (read-only during the iteration, shared with
/// scoring workers via `Arc`), a user → arena-row index, and the
/// top-K accumulators (read-write, persisted on unload).
///
/// The arena replaces the old per-user `PreparedProfile` map: one
/// allocation per column instead of several per user, and scoring
/// workers index rows directly instead of hashing user ids per pair.
struct PartitionState {
    arena: Arc<ProfileArena>,
    index: FxHashMap<u32, u32>,
    accums: FxHashMap<u32, TopKAccumulator>,
    dirty: bool,
}

/// A canonical tuple queued for scoring: endpoints, their resolved
/// arena row indices (looked up once on the driving thread, so the
/// scoring workers do no hashing at all), and the [`meta_bits`]
/// direction byte (carried through so the offers follow exactly the
/// directions phase 2 recorded).
type PendingTuple = (u32, u32, u32, u32, u8);

/// A scored canonical tuple: endpoints, direction byte, similarity.
type ScoredTuple = (u32, u32, u8, f32);

/// A unit of scoring work: an owned tuple chunk plus shared profile
/// arenas, safe to outlive cache evictions.
struct ScoreTask {
    src: Arc<ProfileArena>,
    dst: Arc<ProfileArena>,
    tuples: Vec<PendingTuple>,
    measure: Measure,
}

fn score_chunk(task: &ScoreTask) -> Vec<ScoredTuple> {
    // Bucket tuples are sorted by (u, v), so equal sources run
    // together: hoist the source-view resolution out of the pair loop
    // (chunk boundaries merely split a run, never reorder it). The
    // views are slices into the shared arenas — no per-pair hashing,
    // no allocation.
    let mut out = Vec::with_capacity(task.tuples.len());
    let mut current: Option<(u32, PreparedRef<'_>)> = None;
    for &(u, v, u_idx, v_idx, bits) in &task.tuples {
        let up = match current {
            Some((ci, up)) if ci == u_idx => up,
            _ => {
                let up = task.src.view(u_idx);
                current = Some((u_idx, up));
                up
            }
        };
        out.push((u, v, bits, task.measure.score_ref(up, task.dst.view(v_idx))));
    }
    out
}

fn load_state(
    backend: &dyn StorageBackend,
    k: usize,
    p: u32,
) -> Result<PartitionState, EngineError> {
    let profile_rows = read_user_lists(backend, StreamId::Profiles(p))?;
    let total_entries: usize = profile_rows.iter().map(|(_, row)| row.len()).sum();
    let mut index = map_with_capacity(profile_rows.len());
    // One pass over the (user-sorted) stream materializes the CSR
    // arena; per-user aggregates are computed as rows are appended.
    let mut builder = ProfileArena::builder(profile_rows.len(), total_entries);
    for (i, (user, row)) in profile_rows.into_iter().enumerate() {
        builder.push(user, row).map_err(|e| {
            EngineError::Store(StoreError::corrupt(
                backend.describe(StreamId::Profiles(p)),
                format!("invalid profile for user {user}: {e}"),
            ))
        })?;
        index.insert(user, i as u32);
    }
    let accum_rows = read_user_lists(backend, StreamId::Accumulators(p))?;
    let mut accums = map_with_capacity(accum_rows.len());
    for (user, row) in accum_rows {
        accums.insert(user, TopKAccumulator::from_row(k, &row));
    }
    Ok(PartitionState {
        arena: Arc::new(builder.finish()),
        index,
        accums,
        dirty: false,
    })
}

fn unload_state(
    backend: &dyn StorageBackend,
    p: u32,
    state: PartitionState,
) -> Result<(), EngineError> {
    if !state.dirty {
        // Profiles are immutable during the iteration and the
        // accumulators are unchanged: nothing to persist.
        return Ok(());
    }
    let mut rows: Vec<(u32, Vec<(u32, f32)>)> = state
        .accums
        .iter()
        .map(|(&user, acc)| (user, acc.to_row()))
        .collect();
    rows.sort_unstable_by_key(|&(u, _)| u);
    write_user_lists(backend, StreamId::Accumulators(p), &rows)?;
    Ok(())
}

/// Runs phase 4 over the given schedule.
///
/// `prune` enables cross-iteration pair suppression (see
/// [`Phase4Prune`]); `None` re-scores every tuple, which is the
/// correct choice whenever the previous iteration's bookkeeping is
/// unavailable (first iteration, resume, pruning disabled).
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure or corrupt state
/// streams, and [`EngineError::InputMismatch`] if a tuple references a
/// user missing from its partition's streams.
pub fn run_phase4(
    schedule: &Schedule,
    pi: &PiGraph,
    meta: &BucketMeta,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase4Options,
    prune: Option<&Phase4Prune<'_>>,
) -> Result<Phase4Output, EngineError> {
    let workers = options.threads.max(1);
    if workers <= 1 {
        return drive(
            schedule,
            pi,
            meta,
            partitioning,
            backend,
            options,
            prune,
            None,
        );
    }
    // Persistent worker pool for the whole run: tasks own Arc'd
    // profile maps, so the cache can evict freely while chunks are in
    // flight within a bucket.
    let (task_tx, task_rx) = channel::unbounded::<ScoreTask>();
    let (result_tx, result_rx) = channel::unbounded::<Vec<ScoredTuple>>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    let _ = result_tx.send(score_chunk(&task));
                }
            });
        }
        drop(task_rx);
        drop(result_tx);
        let pool = WorkerPool {
            task_tx,
            result_rx,
            workers,
        };
        drive(
            schedule,
            pi,
            meta,
            partitioning,
            backend,
            options,
            prune,
            Some(pool),
        )
    })
}

/// Handle to the scoring pool (senders dropped at end of scope shut
/// the workers down).
struct WorkerPool {
    task_tx: channel::Sender<ScoreTask>,
    result_rx: channel::Receiver<Vec<ScoredTuple>>,
    workers: usize,
}

#[allow(clippy::too_many_arguments)]
fn drive(
    schedule: &Schedule,
    pi: &PiGraph,
    meta: &BucketMeta,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase4Options,
    prune: Option<&Phase4Prune<'_>>,
    pool: Option<WorkerPool>,
) -> Result<Phase4Output, EngineError> {
    let mut cache: SlotCache<PartitionState> =
        SlotCache::new(options.cache_slots).with_io_stats(Arc::clone(backend.stats()));
    let mut sims_computed = 0u64;
    let mut sims_skipped = 0u64;
    let mut sims_pruned = 0u64;

    for step in schedule.iter() {
        cache.ensure(
            step.a,
            None,
            |p| load_state(backend, options.k, p),
            |p, s| unload_state(backend, p, s),
        )?;
        if !step.is_self() {
            cache.ensure(
                step.b,
                Some(step.a),
                |p| load_state(backend, options.k, p),
                |p, s| unload_state(backend, p, s),
            )?;
        }
        // Both directed buckets of the pair (one for a self-pair).
        let buckets: &[(u32, u32)] = if step.is_self() {
            &[(step.a, step.a)]
        } else {
            &[(step.a, step.b), (step.b, step.a)]
        };
        for &(src, dst) in buckets {
            if pi.bucket_weight(src, dst) == 0 {
                continue;
            }
            // Bucket rows stream in already carrying their direction
            // bits (v2 tuple codec); the full metadata byte — old-path
            // bits included — comes from the phase-2 BucketMeta.
            let tuples = read_tuples(backend, StreamId::TupleBucket(src, dst))?;
            // Validate and filter on the driving thread: skip / prune
            // decisions read the accumulators as of bucket start
            // (scores land only after the whole bucket is collected),
            // so they are identical at every thread count.
            let (survivors, skipped, pruned) = {
                let src_state = cache.get(src).expect("src resident");
                let dst_state = cache.get(dst).expect("dst resident");
                filter_bucket(
                    (src, dst),
                    tuples,
                    meta,
                    src_state,
                    dst_state,
                    options,
                    prune,
                )?
            };
            sims_skipped += skipped;
            sims_pruned += pruned;
            if survivors.is_empty() {
                continue;
            }
            let src_profiles = Arc::clone(&cache.get(src).expect("src resident").arena);
            let dst_profiles = Arc::clone(&cache.get(dst).expect("dst resident").arena);
            let scored = match &pool {
                Some(pool) if survivors.len() >= options.parallel_threshold => {
                    let chunk = survivors.len().div_ceil(pool.workers);
                    let mut dispatched = 0usize;
                    for part in survivors.chunks(chunk) {
                        pool.task_tx
                            .send(ScoreTask {
                                src: Arc::clone(&src_profiles),
                                dst: Arc::clone(&dst_profiles),
                                tuples: part.to_vec(),
                                measure: options.measure,
                            })
                            .expect("workers alive while the run drives them");
                        dispatched += 1;
                    }
                    let mut out = Vec::with_capacity(survivors.len());
                    for _ in 0..dispatched {
                        out.extend(pool.result_rx.recv().expect("worker delivered its chunk"));
                    }
                    out
                }
                _ => score_chunk(&ScoreTask {
                    src: src_profiles,
                    dst: dst_profiles,
                    tuples: survivors,
                    measure: options.measure,
                }),
            };
            sims_computed += scored.len() as u64;
            apply_scores(&mut cache, src, dst, &scored, options.include_reverse);
        }
    }

    cache.flush(|p, s| unload_state(backend, p, s))?;
    let counters = cache.counters();

    // Harvest: fold every partition's accumulator stream into G(t+1).
    let n = partitioning.num_users();
    let mut graph = KnnGraph::new(n, options.k);
    for p in 0..partitioning.num_partitions() as u32 {
        let rows = read_user_lists(backend, StreamId::Accumulators(p))?;
        for (user, row) in rows {
            let neighbors: Vec<Neighbor> = row
                .iter()
                .map(|&(id, sim)| Neighbor::new(UserId::new(id), sim))
                .collect();
            graph.set_neighbors(UserId::new(user), neighbors)?;
        }
    }

    Ok(Phase4Output {
        graph,
        cache: counters,
        sims_computed,
        sims_skipped,
        sims_pruned,
    })
}

/// After this many bound evaluations in one bucket with a hit rate
/// below [`GATE_MIN_HIT_SHIFT`], the bound filter stands down for the
/// bucket's remainder: on candidate pools where the ceiling can
/// rarely beat the thresholds (e.g. an almost-converged in-cluster
/// pool), the checks would be pure overhead. The gate runs on the
/// driving thread in bucket order, so it — and therefore
/// `sims_pruned` — is deterministic across thread counts.
const GATE_WINDOW: u64 = 1024;

/// Gate threshold: keep checking while `hits << GATE_MIN_HIT_SHIFT >=
/// attempts`, i.e. at least 1 prune per 32 attempts.
const GATE_MIN_HIT_SHIFT: u64 = 5;

/// The driver-side scoring funnel of one bucket: validates every
/// canonical tuple's endpoints, applies cross-iteration suppression
/// and the upper-bound filter per recorded direction, and returns
/// `(survivors, skipped, pruned)`.
///
/// Thresholds are read from the accumulators as they stand at bucket
/// start; since thresholds only tighten as scores arrive, a stale
/// threshold can only *under*-prune — the filter is exact regardless
/// of bucket or thread scheduling.
#[allow(clippy::too_many_arguments)]
fn filter_bucket(
    bucket: (u32, u32),
    tuples: Vec<TupleRow>,
    meta: &BucketMeta,
    src: &PartitionState,
    dst: &PartitionState,
    options: &Phase4Options,
    prune: Option<&Phase4Prune<'_>>,
) -> Result<(Vec<PendingTuple>, u64, u64), EngineError> {
    // Resolve the bucket's metadata slice once — the per-tuple bits
    // are then a plain index, not a map lookup on the hot path.
    let meta_bytes = meta.bucket_bytes(bucket).unwrap_or(&[]);
    if meta_bytes.len() != tuples.len() {
        return Err(EngineError::input(format!(
            "bucket ({}, {}) has {} tuples but its metadata covers {} — phase-2 metadata \
             must come from the same run as the bucket streams",
            bucket.0,
            bucket.1,
            tuples.len(),
            meta_bytes.len(),
        )));
    }
    let mut survivors: Vec<PendingTuple> = Vec::with_capacity(tuples.len());
    let mut skipped = 0u64;
    let mut pruned = 0u64;
    let mut bound_attempts = 0u64;
    let mut bound_hits = 0u64;

    // Bucket tuples are sorted by (u, v): walk them in equal-u groups
    // so the per-user lookups (arena row, threshold, seed bit) happen
    // once per group instead of once per tuple.
    let mut start = 0usize;
    while start < tuples.len() {
        let u = tuples[start].0;
        let end = start + tuples[start..].partition_point(|t| t.0 == u);
        let Some(&u_idx) = src.index.get(&u) else {
            return Err(EngineError::input(format!(
                "tuple ({u}, {}) references a user missing from its partition file",
                tuples[start].1
            )));
        };
        let up = src.arena.view(u_idx);
        let u_seed_ok = prune.is_some_and(|pr| pr.seed_ok[u as usize]);
        let u_profile_dirty = prune.is_some_and(|pr| pr.profile_dirty[u as usize]);
        let u_threshold = if options.bound_filter {
            src.accums
                .get(&u)
                .expect("accumulator row exists for every partition user")
                .threshold()
        } else {
            None
        };
        #[allow(clippy::needless_range_loop)] // idx also indexes the bucket metadata
        for idx in start..end {
            let v = tuples[idx].1;
            let Some(&v_idx) = dst.index.get(&v) else {
                return Err(EngineError::input(format!(
                    "tuple ({u}, {v}) references a user missing from its partition file"
                )));
            };
            let vp = dst.arena.view(v_idx);
            let bits = meta_bytes[idx];
            debug_assert_eq!(
                tuples[idx].2,
                bits & (meta_bits::FWD | meta_bits::BWD),
                "bucket stream direction bits disagree with BucketMeta"
            );
            // Which directed offers still need a fresh evaluation? A
            // direction is redundant when its pair was evaluated last
            // iteration (old path) and everything it was judged
            // against is provably unchanged.
            let (fwd_needed, bwd_needed) = match prune {
                Some(pr) => {
                    let v_seed_ok = pr.seed_ok[v as usize];
                    let v_profile_dirty = pr.profile_dirty[v as usize];
                    let fwd_redundant = bits & meta_bits::OLD_FWD != 0
                        && u_seed_ok
                        && !v_profile_dirty
                        && (!options.include_reverse || v_seed_ok);
                    let bwd_redundant = bits & meta_bits::OLD_BWD != 0
                        && v_seed_ok
                        && !u_profile_dirty
                        && (!options.include_reverse || u_seed_ok);
                    (
                        bits & meta_bits::FWD != 0 && !fwd_redundant,
                        bits & meta_bits::BWD != 0 && !bwd_redundant,
                    )
                }
                None => (bits & meta_bits::FWD != 0, bits & meta_bits::BWD != 0),
            };
            if !fwd_needed && !bwd_needed {
                // Every recorded direction was already evaluated last
                // iteration; the seed rows carry their verdicts.
                skipped += 1;
                continue;
            }
            // Which accumulators would a fresh score have to beat?
            let into_u = fwd_needed || (options.include_reverse && bwd_needed);
            let into_v = bwd_needed || (options.include_reverse && fwd_needed);
            if options.bound_filter {
                let gate_open = bound_attempts < GATE_WINDOW
                    || bound_hits << GATE_MIN_HIT_SHIFT >= bound_attempts;
                if gate_open {
                    bound_attempts += 1;
                    let bound = options.measure.upper_bound_ref(up, vp);
                    let prunable = bound.is_finite()
                        && (!into_u
                            || u_threshold.is_some_and(|thr| {
                                !Neighbor::new(UserId::new(v), bound).beats(&thr)
                            }))
                        && (!into_v
                            || dst
                                .accums
                                .get(&v)
                                .expect("accumulator row exists for every partition user")
                                .threshold()
                                .is_some_and(|thr| {
                                    !Neighbor::new(UserId::new(u), bound).beats(&thr)
                                }));
                    if prunable {
                        // Even the score ceiling cannot displace the
                        // current k-th entry anywhere this tuple
                        // would be offered.
                        bound_hits += 1;
                        pruned += 1;
                        continue;
                    }
                }
            }
            survivors.push((u, v, u_idx, v_idx, bits));
        }
        start = end;
    }
    Ok((survivors, skipped, pruned))
}

/// Applies scored canonical tuples to the resident accumulators,
/// following each tuple's direction bits (both directions when
/// `include_reverse` widens the offers).
fn apply_scores(
    cache: &mut SlotCache<PartitionState>,
    src: u32,
    dst: u32,
    scored: &[ScoredTuple],
    include_reverse: bool,
) {
    // Offers into the src-side accumulators (candidate v for user u).
    // Scored rows arrive in equal-u runs (chunk results may be
    // concatenated out of order, which only splits runs), so the
    // accumulator lookup hoists per run.
    let mut src_dirty = false;
    {
        let state = cache.get_mut(src).expect("src resident");
        let mut i = 0usize;
        while i < scored.len() {
            let u = scored[i].0;
            let mut end = i + 1;
            while end < scored.len() && scored[end].0 == u {
                end += 1;
            }
            let acc = state
                .accums
                .get_mut(&u)
                .expect("accumulator row exists for every partition user");
            for &(_, v, bits, sim) in &scored[i..end] {
                let offer_fwd =
                    bits & meta_bits::FWD != 0 || (include_reverse && bits & meta_bits::BWD != 0);
                if offer_fwd {
                    acc.offer(Neighbor::new(UserId::new(v), sim));
                    src_dirty = true;
                }
            }
            i = end;
        }
        state.dirty |= src_dirty;
    }
    // Offers into the dst-side accumulators (candidate u for user v).
    let mut dst_dirty = false;
    {
        let state = cache.get_mut(dst).expect("dst resident");
        for &(u, v, bits, sim) in scored {
            let offer_bwd =
                bits & meta_bits::BWD != 0 || (include_reverse && bits & meta_bits::FWD != 0);
            if offer_bwd {
                state
                    .accums
                    .get_mut(&v)
                    .expect("accumulator row exists for every partition user")
                    .offer(Neighbor::new(UserId::new(u), sim));
                dst_dirty = true;
            }
        }
        state.dirty |= dst_dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::{reshard_profiles, write_partition_edges};
    use crate::phase2::generate_tuples;
    use crate::traversal::Heuristic;
    use knn_sim::ProfileStore;

    fn options(k: usize, threads: usize) -> Phase4Options {
        Phase4Options {
            k,
            measure: Measure::Cosine,
            threads,
            cache_slots: 2,
            include_reverse: false,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            bound_filter: false,
        }
    }

    /// Builds a tiny world: n users in m partitions with simple
    /// profiles, a given KNN graph, everything written to the backend.
    fn setup_world(
        g: &KnnGraph,
        profiles: &ProfileStore,
        m: usize,
    ) -> (
        knn_store::MemBackend,
        Partitioning,
        crate::phase2::Phase2Output,
    ) {
        let n = g.num_vertices();
        let b = knn_store::MemBackend::new();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        reshard_profiles(&b, None, &p, Some(profiles), 1).unwrap();
        write_partition_edges(g, &p, &b, 1, None).unwrap();
        let out =
            generate_tuples(&p, &b, &crate::phase2::Phase2Options::new(1 << 16, 1), None).unwrap();
        (b, p, out)
    }

    fn line_profiles(n: usize) -> ProfileStore {
        // User u rates items u and u+1: consecutive users overlap.
        let mut store = ProfileStore::new(n);
        for u in 0..n as u32 {
            let p = store.get_mut(UserId::new(u));
            p.set(knn_sim::ItemId::new(u), 1.0);
            p.set(knn_sim::ItemId::new(u + 1), 1.0);
        }
        store
    }

    #[test]
    fn single_pair_scores_and_harvests() {
        // 0 → 1 with overlapping profiles: G(1)[0] must contain 1.
        let mut g = KnnGraph::new(2, 1);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = line_profiles(2);
        let (b, p, p2) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        let out = run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(1, 1),
            None,
        )
        .unwrap();
        let nbrs = out.graph.neighbors(UserId::new(0));
        assert_eq!(nbrs.len(), 1);
        assert_eq!(nbrs[0].id, UserId::new(1));
        assert!((nbrs[0].sim - 0.5).abs() < 1e-6, "cosine of half-overlap");
        assert_eq!(out.sims_computed, 1);
        assert_eq!(out.sims_skipped, 0);
        assert_eq!(out.sims_pruned, 0);
    }

    #[test]
    fn result_is_heuristic_independent() {
        let n = 36;
        let g = KnnGraph::random_init(n, 4, 3);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for h in Heuristic::ALL {
            let (b, p, p2) = setup_world(&g, &profiles, 4);
            let schedule = h.schedule(&p2.pi);
            let out = run_phase4(
                &schedule,
                &p2.pi,
                &p2.tuple_meta,
                &p,
                &b,
                &options(4, 1),
                None,
            )
            .unwrap();
            results.push((h, out.graph));
        }
        for (h, g2) in &results[1..] {
            assert_eq!(g2, &results[0].1, "{h} produced a different G(t+1)");
        }
    }

    #[test]
    fn result_is_thread_count_independent() {
        let n = 48;
        let g = KnnGraph::random_init(n, 5, 7);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for threads in [1, 2, 4] {
            let (b, p, p2) = setup_world(&g, &profiles, 3);
            let schedule = Heuristic::DegreeLowHigh.schedule(&p2.pi);
            let out = run_phase4(
                &schedule,
                &p2.pi,
                &p2.tuple_meta,
                &p,
                &b,
                &options(5, threads),
                None,
            )
            .unwrap();
            results.push(out.graph);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn parallel_path_is_exercised_above_threshold() {
        // Enough users that at least one bucket crosses the parallel
        // threshold with m=2.
        let n = 600;
        let g = KnnGraph::random_init(n, 6, 2);
        let profiles = line_profiles(n);
        let (b, p, p2) = setup_world(&g, &profiles, 2);
        assert!(
            p2.pi
                .iter_buckets()
                .any(|(_, w)| w >= DEFAULT_PARALLEL_THRESHOLD as u64),
            "test needs a bucket above the parallel threshold"
        );
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        let sequential = run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(6, 1),
            None,
        )
        .unwrap();
        let parallel = run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(6, 4),
            None,
        )
        .unwrap();
        assert_eq!(sequential.graph, parallel.graph);
        assert_eq!(sequential.sims_computed, parallel.sims_computed);
    }

    #[test]
    fn parallel_threshold_is_tunable() {
        // With the threshold forced to 1, even tiny buckets take the
        // pool path; with it huge, everything scores inline — both
        // must produce the identical graph and counters.
        let n = 60;
        let g = KnnGraph::random_init(n, 4, 9);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for threshold in [1usize, usize::MAX] {
            let (b, p, p2) = setup_world(&g, &profiles, 3);
            let schedule = Heuristic::Sequential.schedule(&p2.pi);
            let mut opts = options(4, 4);
            opts.parallel_threshold = threshold;
            let out = run_phase4(&schedule, &p2.pi, &p2.tuple_meta, &p, &b, &opts, None).unwrap();
            results.push((out.graph, out.sims_computed));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn result_is_partition_count_independent() {
        let n = 30;
        let g = KnnGraph::random_init(n, 3, 11);
        let profiles = line_profiles(n);
        let mut results = Vec::new();
        for m in [2, 3, 5] {
            let (b, p, p2) = setup_world(&g, &profiles, m);
            let schedule = Heuristic::Sequential.schedule(&p2.pi);
            let out = run_phase4(
                &schedule,
                &p2.pi,
                &p2.tuple_meta,
                &p,
                &b,
                &options(3, 1),
                None,
            )
            .unwrap();
            results.push(out.graph);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn cache_respects_two_slots_and_counts_ops() {
        let n = 24;
        let g = KnnGraph::random_init(n, 3, 5);
        let profiles = line_profiles(n);
        let (b, p, p2) = setup_world(&g, &profiles, 6);
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        let predicted = crate::traversal::simulate_schedule_ops(&schedule, 2);
        let out = run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(3, 1),
            None,
        )
        .unwrap();
        assert_eq!(
            out.cache.loads, predicted.loads,
            "dry run must match execution"
        );
        assert_eq!(out.cache.unloads, predicted.unloads);
        assert_eq!(b.stats().snapshot().partition_loads, out.cache.loads);
    }

    #[test]
    fn reverse_offers_add_candidates() {
        // Only edge 0 → 1; with reverse, user 1 also gains candidate 0.
        let mut g = KnnGraph::new(2, 1);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        let profiles = line_profiles(2);
        let (b, p, p2) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        let mut opts = options(1, 1);
        opts.include_reverse = true;
        let out = run_phase4(&schedule, &p2.pi, &p2.tuple_meta, &p, &b, &opts, None).unwrap();
        assert_eq!(out.graph.neighbors(UserId::new(1)).len(), 1);
        assert_eq!(out.graph.neighbors(UserId::new(1))[0].id, UserId::new(0));
    }

    #[test]
    fn empty_schedule_yields_empty_graph() {
        let g = KnnGraph::new(4, 2);
        let profiles = ProfileStore::new(4);
        let (b, p, p2) = setup_world(&g, &profiles, 2);
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        assert!(schedule.is_empty());
        let out = run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(2, 1),
            None,
        )
        .unwrap();
        assert_eq!(out.graph.num_edges(), 0);
        assert_eq!(out.sims_computed, 0);
    }

    /// Profiles with strongly varied lengths (1–6 items), so the
    /// set-measure upper bounds `min(|A|,|B|)/max(|A|,|B|)` actually
    /// separate candidates.
    fn varied_profiles(n: usize) -> ProfileStore {
        let mut store = ProfileStore::new(n);
        for u in 0..n as u32 {
            let p = store.get_mut(UserId::new(u));
            for i in 0..=(u % 6) {
                p.set(knn_sim::ItemId::new(u + i), 1.0);
            }
        }
        store
    }

    /// The bound filter never changes the graph, only the number of
    /// kernel evaluations, across measures and thread counts.
    #[test]
    fn bound_filter_is_exact_and_thread_invariant() {
        let n = 80;
        for measure in [Measure::Jaccard, Measure::Dice, Measure::Cosine] {
            let g = KnnGraph::random_init(n, 5, 13);
            let profiles = varied_profiles(n);
            let (b, p, p2) = setup_world(&g, &profiles, 4);
            let schedule = Heuristic::DegreeLowHigh.schedule(&p2.pi);
            let mut plain_opts = options(2, 1);
            plain_opts.measure = measure;
            let plain =
                run_phase4(&schedule, &p2.pi, &p2.tuple_meta, &p, &b, &plain_opts, None).unwrap();
            let mut counters = Vec::new();
            for threads in [1usize, 4] {
                let mut opts = options(2, threads);
                opts.measure = measure;
                opts.bound_filter = true;
                opts.parallel_threshold = 8; // force the pool path too
                let filtered =
                    run_phase4(&schedule, &p2.pi, &p2.tuple_meta, &p, &b, &opts, None).unwrap();
                assert_eq!(
                    plain.graph, filtered.graph,
                    "{measure}: bound filter changed the graph"
                );
                assert_eq!(
                    filtered.sims_computed + filtered.sims_pruned,
                    plain.sims_computed,
                    "{measure}: every tuple is either computed or pruned"
                );
                counters.push((filtered.sims_computed, filtered.sims_pruned));
            }
            assert_eq!(
                counters[0], counters[1],
                "{measure}: counters must not depend on threads"
            );
            // K=2 on heavily-overlapping line profiles: the filter
            // must actually bite for the set measures.
            if measure != Measure::Cosine {
                assert!(counters[0].1 > 0, "{measure}: filter never pruned");
            }
        }
    }

    /// One unpruned iteration from `g` (fresh world), returning
    /// `G(t+1)`.
    fn iterate_unpruned(g: &KnnGraph, profiles: &ProfileStore, k: usize, m: usize) -> KnnGraph {
        let (b, p, p2) = setup_world(g, profiles, m);
        let schedule = Heuristic::Sequential.schedule(&p2.pi);
        run_phase4(
            &schedule,
            &p2.pi,
            &p2.tuple_meta,
            &p,
            &b,
            &options(k, 1),
            None,
        )
        .unwrap()
        .graph
    }

    /// One pruned iteration from `current` (with `previous` as the
    /// last graph and clean profiles), returning the full output.
    fn iterate_pruned(
        current: &KnnGraph,
        previous: &KnnGraph,
        profiles: &ProfileStore,
        k: usize,
        m: usize,
    ) -> Phase4Output {
        let n = current.num_vertices();
        let additions = current.additions_since(previous);
        let seed_ok: Vec<bool> = (0..n as u32)
            .map(|u| current.fully_scored(UserId::new(u)))
            .collect();
        let profile_dirty = vec![false; n];
        let b = knn_store::MemBackend::new();
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        reshard_profiles(&b, None, &p, Some(profiles), 1).unwrap();
        write_partition_edges(current, &p, &b, 1, Some(&seed_ok)).unwrap();
        let out = generate_tuples(
            &p,
            &b,
            &crate::phase2::Phase2Options::new(1 << 16, 1),
            Some(&additions),
        )
        .unwrap();
        let schedule = Heuristic::Sequential.schedule(&out.pi);
        let prune = Phase4Prune {
            seed_ok: &seed_ok,
            profile_dirty: &profile_dirty,
        };
        run_phase4(
            &schedule,
            &out.pi,
            &out.tuple_meta,
            &p,
            &b,
            &options(k, 1),
            Some(&prune),
        )
        .unwrap()
    }

    /// Cross-iteration suppression is exact: iteration 2 with the
    /// honest G(0) → G(1) addition oracle skips a real share of the
    /// tuples and still lands on the identical G(2).
    #[test]
    fn suppression_is_exact_on_iteration_two() {
        let (n, k, m) = (40, 4, 4);
        let g0 = KnnGraph::random_init(n, k, 21);
        let profiles = line_profiles(n);
        let g1 = iterate_unpruned(&g0, &profiles, k, m);
        let reference = iterate_unpruned(&g1, &profiles, k, m);
        let pruned = iterate_pruned(&g1, &g0, &profiles, k, m);
        assert_eq!(pruned.graph, reference, "suppression changed G(2)");
        assert!(pruned.sims_skipped > 0, "no pair was suppressed");
        assert!(
            pruned.sims_computed > 0,
            "iteration 2 still has fresh pairs"
        );
    }

    /// At a fixed point (G(t+1) == G(t), static profiles) suppression
    /// skips *every* tuple: zero kernel evaluations, identical graph.
    #[test]
    fn suppression_skips_everything_at_a_fixed_point() {
        let (n, k, m) = (40, 4, 4);
        let profiles = line_profiles(n);
        let mut prev = KnnGraph::random_init(n, k, 21);
        let mut current = iterate_unpruned(&prev, &profiles, k, m);
        let mut rounds = 0;
        while current != prev {
            prev = current;
            current = iterate_unpruned(&prev, &profiles, k, m);
            rounds += 1;
            assert!(rounds < 20, "line-profile world failed to converge");
        }
        // current == prev: the oracle between them is empty.
        let pruned = iterate_pruned(&current, &prev, &profiles, k, m);
        assert_eq!(pruned.graph, current, "fixed point not reproduced");
        assert_eq!(
            pruned.sims_computed, 0,
            "a fully static world needs zero kernel evaluations"
        );
        assert!(pruned.sims_skipped > 0);
    }
}
