//! Property-based tests for the engine's invariant-bearing pieces.

use knn_cluster::ClusterAssignment;
use knn_core::partition::{
    objective, ClusterPartitioner, Partitioner, PartitionerKind, Partitioning,
};
use knn_core::topk::TopKAccumulator;
use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::tuple_table::{merge_parts, meta_bits, TupleTable};
use knn_core::PiGraph;
use knn_graph::{DiGraph, KnnGraph, Neighbor, UserId};
use knn_store::backend::read_tuples;
use knn_store::{MemBackend, StorageBackend, StreamId};
use proptest::prelude::*;

/// Offers with duplicates planted, so dedup is always exercised: each
/// generated pair is offered 1–3 times, with repeats interleaved far
/// apart (straddling whatever spill boundaries the threshold creates).
/// One generated offer: the pair plus how many times to offer it.
type Offer = ((u32, u32), u8);
/// Final bucket contents keyed by partition pair.
type Buckets = std::collections::BTreeMap<(u32, u32), Vec<(u32, u32)>>;

fn arb_offers() -> impl Strategy<Value = (usize, Vec<Offer>)> {
    (6usize..40).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec((pair, 1u8..4), 0..120))
    })
}

/// Replays `offers` into tables (one per `namespaces`) and merges,
/// returning bucket contents (canonical tuples), the directed-tuple
/// expansion via the metadata bits, and stats. Repeat-offers are
/// interleaved round-robin so duplicates straddle spill runs rather
/// than sitting adjacent.
fn run_tables(
    backend: &MemBackend,
    partitioning: &Partitioning,
    offers: &[Offer],
    spill_threshold: usize,
    namespaces: u32,
) -> (
    knn_core::tuple_table::TupleTableStats,
    Buckets,
    std::collections::BTreeSet<(u32, u32)>,
) {
    let mut tables: Vec<TupleTable> = (0..namespaces)
        .map(|ns| TupleTable::with_namespace(backend, partitioning, spill_threshold, ns))
        .collect();
    let max_repeat = offers.iter().map(|&(_, r)| r).max().unwrap_or(1);
    for round in 0..max_repeat {
        for (i, &((s, d), repeats)) in offers.iter().enumerate() {
            if round < repeats {
                tables[i % namespaces as usize].offer(s, d).unwrap();
            }
        }
    }
    let parts = tables.into_iter().map(TupleTable::into_parts).collect();
    let (pi, stats, meta) = merge_parts(backend, partitioning.num_partitions(), parts, 2).unwrap();
    let mut buckets = Buckets::new();
    let mut directed = std::collections::BTreeSet::new();
    for ((i, j), w) in pi.iter_buckets() {
        let rows = read_tuples(backend, StreamId::TupleBucket(i, j)).unwrap();
        assert_eq!(rows.len() as u64, w, "PI weight disagrees with bucket");
        for (idx, &(u, v, inline)) in rows.iter().enumerate() {
            let bits = meta.bits((i, j), idx);
            assert_eq!(
                inline,
                bits & (meta_bits::FWD | meta_bits::BWD),
                "bucket stream direction bits must match the metadata"
            );
            if bits & meta_bits::FWD != 0 {
                directed.insert((u, v));
            }
            if bits & meta_bits::BWD != 0 {
                directed.insert((v, u));
            }
        }
        buckets.insert((i, j), rows.into_iter().map(|(u, v, _)| (u, v)).collect());
    }
    (stats, buckets, directed)
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..30).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self-loops", |(a, b)| a != b);
        (Just(n), proptest::collection::vec(edge, 0..60))
    })
}

/// Instantiates `kind` the way the engine would: graph partitioners
/// from the bare kind + seed, `Cluster` bound to a deterministic
/// synthetic cluster assignment (labels derived from the seed).
fn make_partitioner(kind: PartitionerKind, seed: u64, n: usize) -> Box<dyn Partitioner> {
    if kind == PartitionerKind::Cluster {
        let k = ((n as u64 % 4) + 1).min(n.max(1) as u64) as u32;
        let labels: Vec<u32> = (0..n as u64)
            .map(|u| ((u * 31 + seed) % k as u64) as u32)
            .collect();
        Box::new(ClusterPartitioner::new(std::sync::Arc::new(
            ClusterAssignment::new(labels, k).unwrap(),
        )))
    } else {
        kind.instantiate(seed)
    }
}

proptest! {
    /// One harness over every `Partitioner` impl (random, greedy,
    /// contiguous, refined, cluster): the result is a permutation of
    /// the users, balanced within `⌈n/m⌉`, and byte-identical when the
    /// same partitioner runs twice with the same seed.
    #[test]
    fn every_partitioner_is_balanced_and_total((n, edges) in arb_graph(), m in 1usize..6, seed in 0u64..20) {
        let m = m.min(n);
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        for kind in PartitionerKind::ALL {
            let p = make_partitioner(kind, seed, n).partition(&g, m).unwrap();
            let cap = n.div_ceil(m);
            let mut seen = vec![false; n];
            for part in 0..m as u32 {
                prop_assert!(p.users_of(part).len() <= cap, "{kind} unbalanced");
                for u in p.users_of(part) {
                    prop_assert!(!seen[u.index()], "{kind} duplicated user {u}");
                    seen[u.index()] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "{kind} lost a user");
            // Deterministic per seed: a fresh instance reproduces the
            // assignment exactly (thread counts never enter: every
            // partitioner is single-threaded by construction).
            let again = make_partitioner(kind, seed, n).partition(&g, m).unwrap();
            prop_assert_eq!(&p, &again, "{} not deterministic", kind);
        }
    }

    #[test]
    fn objective_lower_bound_holds((n, edges) in arb_graph(), m in 1usize..6, seed in 0u64..10) {
        // Each vertex with out-edges contributes >= 1, same for
        // in-edges; and the cost never exceeds 2x the edge count.
        let m = m.min(n);
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        let p = PartitionerKind::Greedy.instantiate(seed).partition(&g, m).unwrap();
        let cost = objective::replication_cost(&g, &p);
        let sources = (0..n as u32).filter(|&v| g.out_degree(UserId::new(v)) > 0).count() as u64;
        let sinks = g.in_degrees().iter().filter(|&&d| d > 0).count() as u64;
        prop_assert!(cost >= sources + sinks, "cost {cost} below lower bound");
        prop_assert!(cost <= 2 * g.num_edges() as u64, "cost {cost} above upper bound");
    }

    #[test]
    fn single_partition_cost_is_exactly_active_vertices((n, edges) in arb_graph()) {
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        let p = Partitioning::from_assignment(vec![0; n], 1).unwrap();
        let cost = objective::replication_cost(&g, &p);
        let sources = (0..n as u32).filter(|&v| g.out_degree(UserId::new(v)) > 0).count() as u64;
        let sinks = g.in_degrees().iter().filter(|&&d| d > 0).count() as u64;
        prop_assert_eq!(cost, sources + sinks);
    }

    #[test]
    fn schedules_cover_all_pairs_exactly_once((n, edges) in arb_graph()) {
        let mut norm: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let pi = PiGraph::from_network_shape(n, &norm);
        let mut expected: Vec<(u32, u32)> = pi.unordered_pairs();
        expected.extend(pi.self_pairs().into_iter().map(|i| (i, i)));
        expected.sort_unstable();
        for h in Heuristic::ALL {
            let s = h.schedule(&pi);
            prop_assert!(s.first_duplicate().is_none(), "{h} duplicated a pair");
            let mut got: Vec<(u32, u32)> = s.steps().iter().map(|st| st.unordered()).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{} coverage mismatch", h);
        }
    }

    #[test]
    fn op_counts_are_conserved((n, edges) in arb_graph(), slots in 2usize..5) {
        let mut norm: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let pi = PiGraph::from_network_shape(n, &norm);
        for h in Heuristic::ALL {
            let cost = simulate_schedule_ops(&h.schedule(&pi), slots);
            prop_assert_eq!(cost.loads, cost.unloads, "{} leaked residents", h);
            // Each step touches <= 2 partitions: loads <= 2 * steps.
            prop_assert!(cost.loads <= 2 * cost.steps.max(1));
        }
    }

    #[test]
    fn topk_matches_sort_truncate(
        k in 1usize..6,
        cands in proptest::collection::vec((0u32..25, -1.0f32..1.0), 0..80),
    ) {
        let mut acc = TopKAccumulator::new(k);
        for &(id, sim) in &cands {
            acc.offer(Neighbor::new(UserId::new(id), sim));
        }
        // Reference: best score per id, sorted, truncated.
        let mut best: std::collections::HashMap<u32, Neighbor> = std::collections::HashMap::new();
        for &(id, sim) in &cands {
            let nb = Neighbor::new(UserId::new(id), sim);
            best.entry(id)
                .and_modify(|cur| {
                    if nb.beats(cur) {
                        *cur = nb;
                    }
                })
                .or_insert(nb);
        }
        let mut reference: Vec<Neighbor> = best.into_values().collect();
        reference.sort();
        reference.truncate(k);
        prop_assert_eq!(acc.entries(), reference.as_slice());
    }

    /// The spill/dedup boundary property the parallel phase 2 leans
    /// on: for ANY spill threshold — 1 (every tuple spills its own
    /// run), exactly-at-threshold, and far above — and any mix of
    /// duplicates straddling spill runs, the merged buckets hold
    /// exactly the unique non-self tuple set, sorted, and the stats
    /// balance (offered = unique + duplicates).
    #[test]
    fn tuple_table_spill_dedup_boundaries(
        (n, offers) in arb_offers(),
        m in 1usize..5,
        spill_threshold in 1usize..6,
        namespaces in 1u32..4,
    ) {
        let m = m.min(n);
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let partitioning = Partitioning::from_assignment(assignment, m).unwrap();
        let backend = MemBackend::new();
        let (stats, buckets, directed) =
            run_tables(&backend, &partitioning, &offers, spill_threshold, namespaces);

        // Reference: canonical (undirected) unique pairs, bucketed by
        // the canonical endpoints' partitions, plus the directed view.
        let mut expected: Buckets = Buckets::new();
        let mut canonical = std::collections::HashSet::new();
        let mut expected_directed = std::collections::BTreeSet::new();
        let mut offered = 0u64;
        for &((s, d), repeats) in &offers {
            if s == d {
                continue;
            }
            offered += repeats as u64;
            expected_directed.insert((s, d));
            let (u, v) = (s.min(d), s.max(d));
            if canonical.insert((u, v)) {
                let key = (
                    partitioning.partition_of(UserId::new(u)),
                    partitioning.partition_of(UserId::new(v)),
                );
                expected.entry(key).or_default().push((u, v));
            }
        }
        for rows in expected.values_mut() {
            rows.sort_unstable();
        }

        prop_assert_eq!(&buckets, &expected);
        prop_assert_eq!(&directed, &expected_directed);
        prop_assert_eq!(stats.offered, offered);
        prop_assert_eq!(stats.unique, canonical.len() as u64);
        prop_assert_eq!(stats.duplicates, offered - canonical.len() as u64);
        // Every spill run was consumed and deleted by the merge.
        prop_assert!(backend
            .list()
            .unwrap()
            .iter()
            .all(|s| matches!(s, StreamId::TupleBucket(..))));
    }

    /// The threshold knob itself never changes the output — only how
    /// much staging hits storage early. Thresholds 1,
    /// exactly-at-count, and effectively-infinite all merge to the
    /// same buckets and dedup stats (spill counts legitimately differ).
    #[test]
    fn spill_threshold_is_output_invariant(
        (n, offers) in arb_offers(),
        m in 1usize..5,
    ) {
        let m = m.min(n);
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let partitioning = Partitioning::from_assignment(assignment, m).unwrap();
        let count = offers.len().max(1);
        let mut reference = None;
        for threshold in [1usize, count, 1 << 16] {
            let backend = MemBackend::new();
            let (stats, buckets, directed) =
                run_tables(&backend, &partitioning, &offers, threshold, 2);
            let projected = (stats.offered, stats.unique, stats.duplicates, buckets, directed);
            match &reference {
                None => reference = Some(projected),
                Some(r) => prop_assert_eq!(r, &projected, "threshold {} diverged", threshold),
            }
        }
    }

    /// The bound-filter safety property end to end: for any pair of
    /// profiles, any measure, and any full accumulator, if the O(1)
    /// upper bound says the candidate cannot beat the current k-th
    /// entry, then offering the *true* score never changes the
    /// accumulator — pruning is exact, for every measure.
    #[test]
    fn bound_filter_never_prunes_a_winner(
        k in 1usize..5,
        seated in proptest::collection::vec((0u32..50, -1.0f32..1.0), 1..30),
        pa in proptest::collection::vec((0u32..40, -5.0f32..5.0), 0..20),
        pb in proptest::collection::vec((0u32..40, -5.0f32..5.0), 0..20),
        cand_id in 100u32..120,
    ) {
        use knn_sim::{Measure, PreparedProfile, Profile};
        let build = |pairs: &[(u32, f32)]| {
            let mut map = std::collections::HashMap::new();
            for &(i, w) in pairs {
                map.insert(i, w);
            }
            PreparedProfile::new(Profile::from_unsorted_pairs(map.into_iter().collect()).unwrap())
        };
        let (a, b) = (build(&pa), build(&pb));
        let mut acc = TopKAccumulator::new(k);
        for &(id, sim) in &seated {
            acc.offer(Neighbor::new(UserId::new(id), sim));
        }
        for m in Measure::ALL {
            let Some(threshold) = acc.threshold() else { break };
            let bound = m.upper_bound(&a, &b);
            let prunable =
                bound.is_finite() && !Neighbor::new(UserId::new(cand_id), bound).beats(&threshold);
            if prunable {
                let mut replay = acc.clone();
                let true_score = m.score_prepared(&a, &b);
                let changed = replay.offer(Neighbor::new(UserId::new(cand_id), true_score));
                prop_assert!(
                    !changed,
                    "{} pruned a winner: bound {}, true {}, threshold {:?}",
                    m, bound, true_score, threshold
                );
                prop_assert_eq!(replay.entries(), acc.entries());
            }
        }
    }

    #[test]
    fn reference_tuple_set_is_exact(n in 4usize..25, k in 1usize..4, seed in 0u64..10) {
        let g = KnnGraph::random_init(n, k, seed);
        let tuples = knn_core::phase2::reference_tuple_set(&g);
        // Brute force: direct + 2-hop.
        let mut brute = std::collections::HashSet::new();
        for s in 0..n as u32 {
            for nb in g.neighbors(UserId::new(s)) {
                brute.insert((s, nb.id.raw()));
                for nb2 in g.neighbors(nb.id) {
                    if nb2.id.raw() != s {
                        brute.insert((s, nb2.id.raw()));
                    }
                }
            }
        }
        prop_assert_eq!(tuples, brute);
    }
}
