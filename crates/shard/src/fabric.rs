//! The exchange fabric: how foreign tuple runs travel between shards.
//!
//! Phase 2's exchange step produces
//! [`ForeignPayload`]s — encoded TuplesV2 runs destined for another
//! shard's buckets. The [`ExchangeFabric`] trait is the transport
//! seam: the in-process [`ChannelFabric`] moves payloads over
//! `std::sync::mpsc` channels today, and a network transport maps onto
//! the same two calls (`send` → a framed stream write to the peer,
//! `drain` → the peer's receive queue at its merge barrier) without
//! touching the engine. The contract a transport must keep is
//! **per-destination FIFO**: payloads from one sender arrive in send
//! order, because arrival order names the exchange streams
//! (`StreamId::ExchangeRun(i, j, seq)`) and the determinism proof
//! leans on that naming being reproducible.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use knn_core::tuple_table::ForeignPayload;

/// Transport abstraction for cross-shard tuple exchange.
///
/// `send` may be called from any thread; `drain` returns everything
/// delivered to `shard` so far, in per-sender FIFO order. The driver
/// guarantees all sends of an iteration complete before the owning
/// shard drains (an explicit barrier between the scan and merge
/// halves of phase 2), so a transport needs no flow control beyond
/// buffering one iteration's payloads.
pub trait ExchangeFabric: Send + Sync {
    /// Delivers `payload` to shard `to`.
    fn send(&self, to: u32, payload: ForeignPayload);

    /// Removes and returns everything delivered to `shard`.
    fn drain(&self, shard: u32) -> Vec<ForeignPayload>;
}

/// The in-process fabric: one mpsc channel per destination shard.
#[derive(Debug)]
pub struct ChannelFabric {
    lanes: Vec<Lane>,
}

#[derive(Debug)]
struct Lane {
    tx: Mutex<Sender<ForeignPayload>>,
    rx: Mutex<Receiver<ForeignPayload>>,
}

impl ChannelFabric {
    /// A fabric connecting `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        let lanes = (0..num_shards)
            .map(|_| {
                let (tx, rx) = channel();
                Lane {
                    tx: Mutex::new(tx),
                    rx: Mutex::new(rx),
                }
            })
            .collect();
        ChannelFabric { lanes }
    }
}

impl ExchangeFabric for ChannelFabric {
    fn send(&self, to: u32, payload: ForeignPayload) {
        self.lanes[to as usize]
            .tx
            .lock()
            .expect("fabric sender poisoned")
            .send(payload)
            .expect("fabric receiver outlives the fabric");
    }

    fn drain(&self, shard: u32) -> Vec<ForeignPayload> {
        self.lanes[shard as usize]
            .rx
            .lock()
            .expect("fabric receiver poisoned")
            .try_iter()
            .collect()
    }
}

/// Per-iteration exchange-volume counters, accounted by the sharded
/// phase-2 driver (deliberately **not** by [`IoStats`]
/// (`knn_store::IoStats`): exchange volume is a shard-topology cost
/// that must stay off the storage meters for I/O totals to be
/// shard-count-invariant).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Foreign payloads sent (staged blocks + re-encoded spill runs).
    pub payloads: u64,
    /// The subset of `payloads` that originated as spill runs.
    pub spill_payloads: u64,
    /// Tuples carried by all payloads.
    pub tuples: u64,
    /// Encoded payload bytes moved across shards.
    pub bytes: u64,
}

impl ExchangeStats {
    /// Accounts one outgoing payload.
    pub(crate) fn record(&mut self, payload: &ForeignPayload) {
        self.payloads += 1;
        self.spill_payloads += payload.from_spill as u64;
        self.tuples += payload.rows;
        self.bytes += payload.bytes.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(bucket: (u32, u32), tag: u8) -> ForeignPayload {
        ForeignPayload {
            bucket,
            from_spill: tag % 2 == 1,
            rows: tag as u64,
            bytes: vec![tag; 3],
        }
    }

    #[test]
    fn channel_fabric_is_fifo_per_destination() {
        let fabric = ChannelFabric::new(2);
        fabric.send(1, payload((0, 1), 1));
        fabric.send(1, payload((0, 2), 2));
        fabric.send(0, payload((3, 3), 3));
        let got = fabric.drain(1);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].bucket, (0, 1));
        assert_eq!(got[1].bucket, (0, 2));
        assert_eq!(fabric.drain(1), vec![]);
        assert_eq!(fabric.drain(0).len(), 1);
    }

    #[test]
    fn stats_account_payloads() {
        let mut stats = ExchangeStats::default();
        stats.record(&payload((0, 1), 1));
        stats.record(&payload((0, 2), 2));
        assert_eq!(stats.payloads, 2);
        assert_eq!(stats.spill_payloads, 1);
        assert_eq!(stats.tuples, 3);
        assert_eq!(stats.bytes, 6);
    }
}
