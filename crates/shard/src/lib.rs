//! # knn-shard — the consistent-hash shard layer
//!
//! Scales the five-phase out-of-core engine across N shards while
//! keeping every observable output identical to one process.
//!
//! ## Shard model
//!
//! A [`HashRing`] consistent-hashes the world: each **partition** (and
//! with it every per-partition stream and every phase-2 tuple bucket
//! `(i, j)` keyed by `i`) has one owning shard, and each **user**'s
//! durable update-log entries have one owning shard — user routing is
//! independent of the partitioning so it survives repartitions. Each
//! shard owns a private [`StorageBackend`](knn_store::StorageBackend)
//! with its own I/O meter. The unmodified five-phase driver runs
//! against a [`ShardRouter`] façade that delegates every storage
//! operation to the owner, and phase 2 is replaced (via
//! [`Phase2Provider`](knn_core::Phase2Provider)) by a
//! scan–exchange–merge pipeline:
//!
//! 1. **Scan** — each shard scans its own partitions on its own
//!    backend, spilling oversize buckets exactly as one process would.
//! 2. **Exchange** — tuple blocks whose bucket belongs to another
//!    shard are encoded as TuplesV2 runs ([`ForeignPayload`]) and
//!    shipped through the [`ExchangeFabric`].
//! 3. **Merge** — the owner persists received runs as
//!    `StreamId::ExchangeRun(i, j, seq)` streams and feeds them into
//!    the same loser-tree merge as its local spill runs.
//!
//! ## The determinism contract, extended
//!
//! The engine already guarantees byte-identical graphs, stream bytes,
//! reports, and I/O meters at every thread count and on both storage
//! backends. This crate extends the contract to **every shard count**:
//!
//! - bucket merges see the same tuple multiset in a deterministic
//!   source order (local runs in run order, then exchange runs in
//!   arrival order — which is itself deterministic because shards scan
//!   and ship sequentially and the fabric is per-destination FIFO), and
//!   the loser-tree emits ascending unique rows regardless of how the
//!   multiset was split;
//! - every metered storage event lands on exactly one meter (a shard's
//!   or the router's), so the summed [`IoSnapshot`](knn_store::IoSnapshot)
//!   equals the single meter of an unsharded run — exchange traffic is
//!   deliberately accounted separately in [`ExchangeStats`];
//! - persisted bucket bytes, [`IterationReport`](knn_core::IterationReport)s
//!   and summed I/O totals are pinned identical across shard counts
//!   {1, 2, 4} by the `shard_equivalence` suite.
//!
//! ## From channels to the network
//!
//! [`ChannelFabric`] moves payloads over in-process channels. A network
//! transport implements the same [`ExchangeFabric`] seam — `send`
//! becomes a framed write to the peer, `drain` the peer's receive
//! buffer at its merge barrier — and inherits the determinism argument
//! as long as it preserves per-destination FIFO order. The serving
//! layer (`knn-serve`) builds scatter-gather query fan-out on the same
//! ring via `ShardedKnnService`.
//!
//! [`ForeignPayload`]: knn_core::tuple_table::ForeignPayload

pub mod engine;
pub mod fabric;
pub mod ring;
pub mod router;

pub use engine::{ShardedEngine, ShardedIterationReport};
pub use fabric::{ChannelFabric, ExchangeFabric, ExchangeStats};
pub use ring::HashRing;
pub use router::ShardRouter;
