//! The sharded driver: N single-process engine shards, one answer.

use std::fmt;
use std::sync::{Arc, Mutex};

use knn_core::metrics::{ConvergenceOutcome, IterationReport};
use knn_core::phase2::{self, Phase2Options, Phase2Output};
use knn_core::tuple_table::{
    merge_parts_with_exchange, BucketMeta, ExchangeSource, TupleTableStats,
};
use knn_core::{EngineConfig, EngineError, KnnEngine, Partitioning, Phase2Provider, PiGraph};
use knn_graph::{EdgeAdditions, KnnGraph, UserId};
use knn_sim::{Profile, ProfileDelta, ProfileStore};
use knn_store::{IoSnapshot, MemBackend, StorageBackend, StreamId};

use crate::fabric::{ChannelFabric, ExchangeFabric, ExchangeStats};
use crate::ring::HashRing;
use crate::router::ShardRouter;

/// One sharded iteration's report: the engine-level
/// [`IterationReport`] (its I/O brackets already summed across
/// shards), plus the per-shard breakdown and the exchange volume.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedIterationReport {
    /// The aggregate report — field for field what a single-process
    /// run of the same world reports (durations aside).
    pub report: IterationReport,
    /// This iteration's I/O delta per shard backend, in shard order.
    pub per_shard_io: Vec<IoSnapshot>,
    /// This iteration's I/O delta on the router's own meter (events
    /// recorded against the routing façade, e.g. phase-4 partition
    /// loads).
    pub router_io: IoSnapshot,
    /// Cross-shard tuple-exchange volume of this iteration.
    pub exchange: ExchangeStats,
}

/// The phase-2 override installed into the inner engine: scan each
/// shard's partitions on that shard's backend, ship foreign buckets
/// over the fabric, merge (local parts + received exchange runs) at
/// each bucket's owner, and stitch the per-shard outputs into one
/// [`Phase2Output`].
struct ShardedPhase2 {
    shards: Vec<Arc<dyn StorageBackend>>,
    ring: Arc<HashRing>,
    fabric: Arc<dyn ExchangeFabric>,
    /// Overwritten each iteration with that iteration's volume; read
    /// by [`ShardedEngine::run_iteration`].
    exchange: Arc<Mutex<ExchangeStats>>,
}

impl Phase2Provider for ShardedPhase2 {
    fn generate_tuples(
        &mut self,
        partitioning: &Partitioning,
        options: &Phase2Options,
        additions: Option<&EdgeAdditions>,
    ) -> Result<Phase2Output, EngineError> {
        if options.legacy_pipeline {
            return Err(EngineError::input(
                "the sharded engine supports only the columnar tuple pipeline",
            ));
        }
        let m = partitioning.num_partitions();
        let num_shards = self.shards.len();
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for p in 0..m as u32 {
            owned[self.ring.owner_of_partition(p) as usize].push(p);
        }
        for shard in &self.shards {
            shard.clear_tuples()?;
        }

        // Scan half: each shard scans its own partitions against its
        // own backend, peels off the buckets it does not own, and
        // ships them. Shards run in shard order and payloads leave in
        // deterministic extraction order, so arrival order at every
        // destination — which names the exchange streams — is a pure
        // function of the world, not of timing.
        let mut volume = ExchangeStats::default();
        let mut per_shard_parts = Vec::with_capacity(num_shards);
        for (s, owned_partitions) in owned.iter().enumerate() {
            let backend = self.shards[s].as_ref();
            let mut parts =
                phase2::scan_tables(partitioning, backend, options, additions, owned_partitions)?;
            let ring = &self.ring;
            let payloads =
                knn_core::tuple_table::extract_foreign_payloads(backend, &mut parts, |key| {
                    ring.owner_of_partition(key.0) as usize == s
                })?;
            for payload in payloads {
                let to = self.ring.owner_of_partition(payload.bucket.0);
                volume.record(&payload);
                self.fabric.send(to, payload);
            }
            per_shard_parts.push(parts);
        }

        // Merge half: every send above has completed (the loop is the
        // barrier), so each shard drains its inbox, persists the
        // foreign runs as exchange streams, and merges them alongside
        // its local parts.
        let mut pi = PiGraph::new(m);
        let mut stats = TupleTableStats::default();
        let mut tuple_meta = BucketMeta::default();
        for (s, parts) in per_shard_parts.into_iter().enumerate() {
            let backend = self.shards[s].as_ref();
            let mut sources = Vec::new();
            for (seq, payload) in self.fabric.drain(s as u32).into_iter().enumerate() {
                let seq = seq as u32;
                backend.write(
                    StreamId::ExchangeRun(payload.bucket.0, payload.bucket.1, seq),
                    &payload.bytes,
                )?;
                sources.push(ExchangeSource {
                    bucket: payload.bucket,
                    seq,
                    from_spill: payload.from_spill,
                });
            }
            let (pi_s, stats_s, meta_s) =
                merge_parts_with_exchange(backend, m, parts, options.threads, sources)?;
            for ((i, j), weight) in pi_s.iter_buckets() {
                pi.add_bucket(i, j, weight);
            }
            stats.offered += stats_s.offered;
            stats.unique += stats_s.unique;
            stats.spills += stats_s.spills;
            tuple_meta.absorb(meta_s);
        }
        // Per-shard duplicate counts are partial under exchange (see
        // `merge_parts_with_exchange`); the global number is exact.
        stats.duplicates = stats.offered - stats.unique;

        *self.exchange.lock().expect("exchange stats poisoned") = volume;
        Ok(Phase2Output {
            pi,
            stats,
            tuple_meta,
        })
    }
}

/// The sharded engine: consistent-hashes the world across N shard
/// backends and drives the unmodified five-phase loop over a
/// [`ShardRouter`], with phase 2 swapped for the scan–exchange–merge
/// pipeline above.
///
/// The determinism contract extends to shard count: graphs, persisted
/// stream bytes (each on its owning shard), [`IterationReport`]s, and
/// summed I/O meters are identical for every shard count ≥ 1 — pinned
/// by the `shard_equivalence` suite.
pub struct ShardedEngine {
    inner: KnnEngine,
    shards: Vec<Arc<dyn StorageBackend>>,
    router: Arc<ShardRouter>,
    ring: Arc<HashRing>,
    exchange: Arc<Mutex<ExchangeStats>>,
    reports: Vec<ShardedIterationReport>,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("num_shards", &self.shards.len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl ShardedEngine {
    /// Creates a sharded engine over the given shard backends with an
    /// explicit initial graph. One backend per shard; a single backend
    /// degenerates to the plain engine (and is what the equivalence
    /// suite compares against).
    ///
    /// # Errors
    ///
    /// Everything [`KnnEngine::with_initial_graph_on`] rejects, plus an
    /// input error for zero shards or the legacy tuple pipeline (the
    /// exchange step is columnar-only).
    pub fn with_initial_graph_on(
        config: EngineConfig,
        graph: KnnGraph,
        profiles: ProfileStore,
        shards: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<Self, EngineError> {
        if shards.is_empty() {
            return Err(EngineError::input(
                "a sharded engine needs at least one shard",
            ));
        }
        if config.legacy_tuple_pipeline() {
            return Err(EngineError::input(
                "the sharded engine supports only the columnar tuple pipeline",
            ));
        }
        let ring = Arc::new(HashRing::new(shards.len()));
        let router = Arc::new(ShardRouter::new(shards.clone(), Arc::clone(&ring)));
        let mut inner = KnnEngine::with_initial_graph_on(
            config,
            graph,
            profiles,
            Arc::clone(&router) as Arc<dyn StorageBackend>,
        )?;

        let exchange = Arc::new(Mutex::new(ExchangeStats::default()));
        let fabric: Arc<dyn ExchangeFabric> = Arc::new(ChannelFabric::new(shards.len()));
        inner.set_phase2_provider(Some(Box::new(ShardedPhase2 {
            shards: shards.clone(),
            ring: Arc::clone(&ring),
            fabric,
            exchange: Arc::clone(&exchange),
        })));

        // The report brackets must see iteration I/O wherever it
        // lands: on a shard (delegated operations) or on the router
        // itself (events recorded against the façade). Each event hits
        // exactly one meter, so this sum matches the single meter of
        // an unsharded run.
        let meters: Vec<Arc<knn_store::IoStats>> = shards
            .iter()
            .map(|s| Arc::clone(s.stats()))
            .chain(std::iter::once(Arc::clone(router.stats())))
            .collect();
        inner.set_io_meter(Some(Arc::new(move || {
            meters.iter().map(|m| m.snapshot()).sum()
        })));

        Ok(ShardedEngine {
            inner,
            shards,
            router,
            ring,
            exchange,
            reports: Vec::new(),
        })
    }

    /// Reopens a sharded engine from shard backends previously
    /// populated by a sharded constructor **with the same shard
    /// count** (stream placement is a pure function of the ring). With
    /// [`EngineConfig::commit_protocol`] on, crash recovery runs first
    /// — through the router, so every shard's streams converge to the
    /// common committed generation before any state is trusted (the
    /// commit record lives on shard 0; each staged backup lives with
    /// its target's owner).
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::resume_on`], plus an input error for zero
    /// shards or the legacy tuple pipeline.
    pub fn resume_on(
        config: EngineConfig,
        shards: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<Self, EngineError> {
        if shards.is_empty() {
            return Err(EngineError::input(
                "a sharded engine needs at least one shard",
            ));
        }
        if config.legacy_tuple_pipeline() {
            return Err(EngineError::input(
                "the sharded engine supports only the columnar tuple pipeline",
            ));
        }
        let ring = Arc::new(HashRing::new(shards.len()));
        let router = Arc::new(ShardRouter::new(shards.clone(), Arc::clone(&ring)));
        let mut inner =
            KnnEngine::resume_on(config, Arc::clone(&router) as Arc<dyn StorageBackend>)?;

        let exchange = Arc::new(Mutex::new(ExchangeStats::default()));
        let fabric: Arc<dyn ExchangeFabric> = Arc::new(ChannelFabric::new(shards.len()));
        inner.set_phase2_provider(Some(Box::new(ShardedPhase2 {
            shards: shards.clone(),
            ring: Arc::clone(&ring),
            fabric,
            exchange: Arc::clone(&exchange),
        })));
        let meters: Vec<Arc<knn_store::IoStats>> = shards
            .iter()
            .map(|s| Arc::clone(s.stats()))
            .chain(std::iter::once(Arc::clone(router.stats())))
            .collect();
        inner.set_io_meter(Some(Arc::new(move || {
            meters.iter().map(|m| m.snapshot()).sum()
        })));

        Ok(ShardedEngine {
            inner,
            shards,
            router,
            ring,
            exchange,
            reports: Vec::new(),
        })
    }

    /// Random-initial-graph constructor over explicit shard backends.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedEngine::with_initial_graph_on`].
    pub fn new_on(
        config: EngineConfig,
        profiles: ProfileStore,
        shards: Vec<Arc<dyn StorageBackend>>,
    ) -> Result<Self, EngineError> {
        let graph = KnnEngine::initial_graph(&config, &profiles)?;
        Self::with_initial_graph_on(config, graph, profiles, shards)
    }

    /// A fully in-memory sharded engine: `num_shards` [`MemBackend`]s.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedEngine::with_initial_graph_on`].
    pub fn in_memory(
        config: EngineConfig,
        profiles: ProfileStore,
        num_shards: usize,
    ) -> Result<Self, EngineError> {
        let shards = (0..num_shards)
            .map(|_| Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>)
            .collect();
        Self::new_on(config, profiles, shards)
    }

    /// Runs one five-phase iteration across the shards.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::run_iteration`].
    pub fn run_iteration(&mut self) -> Result<ShardedIterationReport, EngineError> {
        let before: Vec<IoSnapshot> = self.shards.iter().map(|s| s.stats().snapshot()).collect();
        let router_before = self.router.stats().snapshot();
        let report = self.inner.run_iteration()?;
        let per_shard_io = self
            .shards
            .iter()
            .zip(before)
            .map(|(s, b)| s.stats().snapshot() - b)
            .collect();
        let sharded = ShardedIterationReport {
            report,
            per_shard_io,
            router_io: self.router.stats().snapshot() - router_before,
            exchange: *self.exchange.lock().expect("exchange stats poisoned"),
        };
        self.reports.push(sharded.clone());
        Ok(sharded)
    }

    /// Runs iterations until the edge-change fraction drops below
    /// `threshold` or `max_iterations` is reached.
    ///
    /// # Errors
    ///
    /// Propagates the first iteration error.
    pub fn run_until_converged(
        &mut self,
        threshold: f64,
        max_iterations: usize,
    ) -> Result<ConvergenceOutcome, EngineError> {
        let mut last_change = 1.0f64;
        for i in 0..max_iterations {
            let report = self.run_iteration()?;
            last_change = report.report.changed_fraction;
            if last_change < threshold {
                return Ok(ConvergenceOutcome {
                    converged: true,
                    iterations_run: i + 1,
                    final_change_fraction: last_change,
                });
            }
        }
        Ok(ConvergenceOutcome {
            converged: false,
            iterations_run: max_iterations,
            final_change_fraction: last_change,
        })
    }

    /// Queues a profile update; the router lands it on its user's
    /// owner shard's durable log.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::queue_update`].
    pub fn queue_update(&mut self, delta: &ProfileDelta) -> Result<(), EngineError> {
        self.inner.queue_update(delta)
    }

    /// The current KNN graph `G(t)`.
    pub fn graph(&self) -> &KnnGraph {
        self.inner.graph()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.inner.config()
    }

    /// The current iteration index `t`.
    pub fn iteration(&self) -> u64 {
        self.inner.iteration()
    }

    /// Reports of every completed iteration, shard breakdown included.
    pub fn reports(&self) -> &[ShardedIterationReport] {
        &self.reports
    }

    /// Cumulative I/O summed across every shard meter and the router.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.io_snapshot()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The ownership ring.
    pub fn ring(&self) -> &Arc<HashRing> {
        &self.ring
    }

    /// The shard backends, in shard order.
    pub fn shards(&self) -> &[Arc<dyn StorageBackend>] {
        &self.shards
    }

    /// The routing façade the inner engine runs against.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// The inner single-driver engine (read-only).
    pub fn inner(&self) -> &KnnEngine {
        &self.inner
    }

    /// What crash recovery found when this engine was resumed (see
    /// [`KnnEngine::recovery_report`]).
    pub fn recovery_report(&self) -> Option<&knn_store::RecoveryReport> {
        self.inner.recovery_report()
    }

    /// Scrubs the persisted state across all shards (see
    /// [`KnnEngine::verify`] — the checks run through the router, so
    /// every stream is read from its owning shard).
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::verify`].
    pub fn verify(&self) -> Result<knn_core::ScrubReport, EngineError> {
        self.inner.verify()
    }

    /// Materializes the stored profile set `P(t)` (see
    /// [`KnnEngine::export_profiles`]).
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::export_profiles`].
    pub fn export_profiles(&self) -> Result<ProfileStore, EngineError> {
        self.inner.export_profiles()
    }

    /// Reads one user's current stored profile.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::profile_of`].
    pub fn profile_of(&self, user: UserId) -> Result<Profile, EngineError> {
        self.inner.profile_of(user)
    }

    /// Number of updates currently queued across all shard logs.
    ///
    /// # Errors
    ///
    /// Same as [`KnnEngine::pending_updates`].
    pub fn pending_updates(&self) -> Result<usize, EngineError> {
        self.inner.pending_updates()
    }
}
