//! Consistent-hash ownership: which shard owns a partition or a user.
//!
//! The ring places [`VNODES`] virtual points per shard on a `u64`
//! circle; a key is owned by the shard of the first point at or after
//! its hash (wrapping). Ownership is a pure function of the shard
//! count, so every process — driver, shard, future remote peer —
//! derives the same layout from the same number, and adding a shard
//! moves only the keys falling into the new shard's arcs (the usual
//! consistent-hashing property; today the engine rebuilds from
//! scratch, but stream names never depend on the move).
//!
//! Partitions and users hash under distinct tags: partition ownership
//! places phase-2 buckets (bucket `(i, j)` lives with partition `i`'s
//! owner), user ownership routes durable update-log appends — the
//! latter deliberately ignores the current partitioning so routing
//! stays stable across repartitions.

/// Virtual points per shard. 64 keeps the max/min arc ratio low
/// enough that partition counts in the tens spread acceptably.
const VNODES: u64 = 64;

/// SplitMix64: a full-avalanche `u64 → u64` mix (Steele et al.), the
/// same generator family the workload seeds use. Seed-free and
/// platform-independent, which is what pins ring layout across
/// processes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// Key-space tags keep partition and user keys from colliding on the
// circle even when their raw ids coincide.
const PARTITION_TAG: u64 = 0x70 << 56;
const USER_TAG: u64 = 0x75 << 56;

/// The consistent-hash ring over `num_shards` shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    num_shards: usize,
    /// `(point hash, shard)` sorted by hash.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds the ring for `num_shards` shards (≥ 1). Deterministic:
    /// two rings built from the same count are identical.
    ///
    /// # Panics
    ///
    /// Panics on zero shards.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(num_shards * VNODES as usize);
        for s in 0..num_shards as u64 {
            for v in 0..VNODES {
                points.push((splitmix64((s << 32) | v), s as u32));
            }
        }
        points.sort_unstable();
        HashRing { num_shards, points }
    }

    /// Number of shards on the ring.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    fn owner_of(&self, key: u64) -> u32 {
        let idx = self.points.partition_point(|&(h, _)| h < key);
        self.points[idx % self.points.len()].1
    }

    /// The shard owning partition `p` — and with it every
    /// per-partition stream and every tuple bucket `(p, j)`.
    pub fn owner_of_partition(&self, p: u32) -> u32 {
        self.owner_of(splitmix64(PARTITION_TAG | p as u64))
    }

    /// The shard owning `user`'s durable update-log entries.
    /// Independent of the current partitioning, so a repartition never
    /// strands queued updates.
    pub fn owner_of_user(&self, user: u32) -> u32 {
        self.owner_of(splitmix64(USER_TAG | user as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1);
        for p in 0..100 {
            assert_eq!(ring.owner_of_partition(p), 0);
            assert_eq!(ring.owner_of_user(p), 0);
        }
    }

    #[test]
    fn owners_are_in_range_and_deterministic() {
        for shards in [2usize, 3, 4, 7] {
            let a = HashRing::new(shards);
            let b = HashRing::new(shards);
            for key in 0..500u32 {
                let p = a.owner_of_partition(key);
                assert!((p as usize) < shards);
                assert_eq!(p, b.owner_of_partition(key));
                let u = a.owner_of_user(key);
                assert!((u as usize) < shards);
                assert_eq!(u, b.owner_of_user(key));
            }
        }
    }

    #[test]
    fn every_shard_receives_some_keys() {
        let shards = 4;
        let ring = HashRing::new(shards);
        let mut part_hits = vec![0u32; shards];
        let mut user_hits = vec![0u32; shards];
        for key in 0..1000u32 {
            part_hits[ring.owner_of_partition(key) as usize] += 1;
            user_hits[ring.owner_of_user(key) as usize] += 1;
        }
        assert!(part_hits.iter().all(|&h| h > 0), "{part_hits:?}");
        assert!(user_hits.iter().all(|&h| h > 0), "{user_hits:?}");
    }

    #[test]
    fn partition_and_user_spaces_are_independent() {
        let ring = HashRing::new(3);
        // Not a hard requirement, but with distinct tags the two maps
        // should disagree somewhere over a small range.
        assert!((0..64u32).any(|k| ring.owner_of_partition(k) != ring.owner_of_user(k)));
    }
}
