//! The routing [`StorageBackend`]: one façade over N shard backends.
//!
//! The sharded engine runs the unmodified five-phase driver against
//! this router. Every stream has exactly one home: per-partition
//! streams (edges, profiles, accumulators, KNN slices) live with the
//! partition's ring owner, tuple streams of bucket `(i, j)` live with
//! partition `i`'s owner, and the singleton metadata streams live on
//! shard 0. Because each storage operation is delegated to exactly one
//! shard — and metered there — the **sum** of the shard meters (plus
//! this router's own, which absorbs direct `stats()` events such as
//! phase-4 partition loads) equals the single-backend meter of the
//! same run, which is the I/O half of the shard-count-invariance
//! contract.
//!
//! The update log is the one routed-by-user surface: an appended
//! delta batch is decoded and each delta re-encoded (the codec is
//! canonical, so bytes are preserved) into its **user's** ring owner
//! log — per-user order is preserved because a user has one home, and
//! phase 5 is insensitive to cross-user order. Reads concatenate the
//! shard logs in shard order.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use knn_store::backend::append_delta;
use knn_store::delta_log::decode_deltas;
use knn_store::{IoStats, StorageBackend, StoreError, StreamId, WorkingDir};

use crate::ring::HashRing;

/// Routes every [`StorageBackend`] operation to the owning shard.
pub struct ShardRouter {
    shards: Vec<Arc<dyn StorageBackend>>,
    ring: Arc<HashRing>,
    /// Receives events recorded through `stats()` directly (partition
    /// loads/unloads, merge passes of code running against the
    /// router); delegated reads/writes are metered by the shard that
    /// serves them.
    stats: Arc<IoStats>,
}

impl fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRouter")
            .field("num_shards", &self.shards.len())
            .finish()
    }
}

impl ShardRouter {
    /// A router over `shards`, owned per `ring`.
    ///
    /// # Panics
    ///
    /// Panics if the shard count disagrees with the ring.
    pub fn new(shards: Vec<Arc<dyn StorageBackend>>, ring: Arc<HashRing>) -> Self {
        assert_eq!(shards.len(), ring.num_shards(), "ring/backends mismatch");
        ShardRouter {
            shards,
            ring,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The shard index serving `stream`.
    pub fn shard_of(&self, stream: StreamId) -> usize {
        match stream {
            StreamId::Meta | StreamId::Assignment | StreamId::Clusters => 0,
            StreamId::InEdges(p)
            | StreamId::OutEdges(p)
            | StreamId::Profiles(p)
            | StreamId::Accumulators(p)
            | StreamId::KnnSlice(p) => self.ring.owner_of_partition(p) as usize,
            StreamId::TupleBucket(i, _)
            | StreamId::TupleRun(i, _, _)
            | StreamId::ExchangeRun(i, _, _) => self.ring.owner_of_partition(i) as usize,
            // The commit record is a singleton (like Meta); a staged
            // backup lives wherever its target lives, so recovery
            // through the façade restores each shard's own streams.
            StreamId::Commit => 0,
            StreamId::Staged(target, _) => self.shard_of(target.stream()),
        }
    }

    fn owner(&self, stream: StreamId) -> &dyn StorageBackend {
        self.shards[self.shard_of(stream)].as_ref()
    }

    /// The shard backends, in shard order.
    pub fn shards(&self) -> &[Arc<dyn StorageBackend>] {
        &self.shards
    }

    /// The ownership ring.
    pub fn ring(&self) -> &Arc<HashRing> {
        &self.ring
    }
}

impl StorageBackend for ShardRouter {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        self.owner(stream).read(stream)
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.owner(stream).read_chunk(stream, offset, len)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        self.owner(stream).write(stream, payload)
    }

    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        self.owner(stream).write_raw(stream, framed)
    }

    fn copy_stream(&self, from: StreamId, to: StreamId) -> Result<(), StoreError> {
        // A staged backup routes with its commit target, so both ends
        // live on the same shard and the copy stays shard-local.
        debug_assert_eq!(self.shard_of(from), self.shard_of(to));
        self.owner(from).copy_stream(from, to)
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        self.owner(stream).delete(stream)
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.owner(stream).exists(stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.list()?);
        }
        Ok(all)
    }

    fn clear_tuples(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.clear_tuples()?;
        }
        Ok(())
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        // Deltas are routed by *user* (not partition owner): a user's
        // updates always land on one shard in arrival order, and the
        // route survives repartitions. Re-encoding a decoded delta is
        // byte-identical (the codec is canonical), so each shard's log
        // holds exactly the bytes a single-backend log would.
        let deltas = decode_deltas(bytes, &PathBuf::from("sharded:updates.log"))?;
        for delta in &deltas {
            let owner = self.ring.owner_of_user(delta.user.raw()) as usize;
            append_delta(self.shards[owner].as_ref(), delta)?;
        }
        Ok(())
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.read_updates()?);
        }
        Ok(all)
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.truncate_updates()?;
        }
        Ok(())
    }

    fn repair_update_log(&self) -> Result<Option<String>, StoreError> {
        // Each shard's log is an independent append stream; a torn
        // tail must be pruned *there* — in the façade's concatenated
        // view it would sit mid-stream and poison every later shard's
        // records.
        let mut dropped: Vec<String> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(detail) = shard.repair_update_log()? {
                dropped.push(format!("shard {s}: {detail}"));
            }
        }
        Ok(if dropped.is_empty() {
            None
        } else {
            Some(dropped.join("; "))
        })
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.storage_usage()?;
        }
        Ok(total)
    }

    fn describe(&self, stream: StreamId) -> PathBuf {
        self.owner(stream).describe(stream)
    }

    fn working_dir(&self) -> Option<&WorkingDir> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::UserId;
    use knn_sim::{ItemId, ProfileDelta};
    use knn_store::backend::read_deltas;
    use knn_store::MemBackend;

    fn router(shards: usize) -> ShardRouter {
        let backends: Vec<Arc<dyn StorageBackend>> = (0..shards)
            .map(|_| Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>)
            .collect();
        ShardRouter::new(backends, Arc::new(HashRing::new(shards)))
    }

    #[test]
    fn streams_route_to_their_partition_owner() {
        let r = router(3);
        for p in 0..20 {
            let home = r.shard_of(StreamId::Profiles(p));
            assert_eq!(r.shard_of(StreamId::InEdges(p)), home);
            assert_eq!(r.shard_of(StreamId::KnnSlice(p)), home);
            assert_eq!(r.shard_of(StreamId::TupleBucket(p, 0)), home);
            assert_eq!(r.shard_of(StreamId::TupleRun(p, 5, 9)), home);
            assert_eq!(r.shard_of(StreamId::ExchangeRun(p, 5, 9)), home);
        }
        assert_eq!(r.shard_of(StreamId::Meta), 0);
        assert_eq!(r.shard_of(StreamId::Assignment), 0);
        assert_eq!(r.shard_of(StreamId::Clusters), 0);
    }

    #[test]
    fn reads_see_the_write_through_the_facade_and_the_owner() {
        let r = router(4);
        let stream = StreamId::Profiles(7);
        r.write(stream, b"payload").unwrap();
        assert!(r.exists(stream));
        assert_eq!(r.read(stream).unwrap(), b"payload");
        let home = r.shard_of(stream);
        for (s, shard) in r.shards().iter().enumerate() {
            assert_eq!(shard.exists(stream), s == home, "shard {s}");
        }
        assert_eq!(r.list().unwrap(), vec![stream]);
        r.delete(stream).unwrap();
        assert!(!r.exists(stream));
    }

    #[test]
    fn updates_route_by_user_and_read_back_in_shard_order() {
        let r = router(3);
        let deltas: Vec<ProfileDelta> = (0..30)
            .map(|u| ProfileDelta::set(UserId::new(u), ItemId::new(u), u as f32))
            .collect();
        for d in &deltas {
            append_delta(&r, d).unwrap();
        }
        // Each user's delta lives on exactly its ring owner.
        let mut seen = 0usize;
        for (s, shard) in r.shards().iter().enumerate() {
            for d in read_deltas(shard.as_ref()).unwrap() {
                assert_eq!(r.ring().owner_of_user(d.user.raw()) as usize, s);
                seen += 1;
            }
        }
        assert_eq!(seen, deltas.len());
        // The façade read is the shard-order concatenation and decodes
        // to the full set.
        let mut routed = read_deltas(&r).unwrap();
        routed.sort_by_key(|d| d.user.raw());
        assert_eq!(routed, deltas);
        r.truncate_updates().unwrap();
        assert_eq!(read_deltas(&r).unwrap(), vec![]);
    }
}
