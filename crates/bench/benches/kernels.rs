//! Criterion micro-benchmarks: similarity kernels and top-K
//! accumulators — the phase-4 inner loops.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use knn_core::topk::TopKAccumulator;
use knn_graph::{Neighbor, UserId};
use knn_sim::{Measure, Profile, Similarity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_profile(rng: &mut StdRng, len: usize, universe: u32) -> Profile {
    let mut p = Profile::new();
    while p.len() < len {
        let item = rng.random_range(0..universe);
        p.set(knn_sim::ItemId::new(item), rng.random_range(0.5..5.0f32));
    }
    p
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let mut rng = StdRng::seed_from_u64(7);
    for len in [16usize, 64, 256] {
        let a = random_profile(&mut rng, len, len as u32 * 4);
        let b = random_profile(&mut rng, len, len as u32 * 4);
        for measure in [
            Measure::Cosine,
            Measure::Jaccard,
            Measure::WeightedJaccard,
            Measure::Pearson,
        ] {
            group.bench_with_input(
                BenchmarkId::new(measure.name(), len),
                &(&a, &b),
                |bencher, (a, b)| bencher.iter(|| black_box(measure.score(a, b))),
            );
        }
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let mut rng = StdRng::seed_from_u64(11);
    let candidates: Vec<Neighbor> = (0..10_000)
        .map(|_| {
            Neighbor::new(
                UserId::new(rng.random_range(0..2000)),
                rng.random_range(-1.0..1.0f32),
            )
        })
        .collect();
    for k in [10usize, 50] {
        group.bench_with_input(BenchmarkId::new("offer_10k", k), &k, |bencher, &k| {
            bencher.iter(|| {
                let mut acc = TopKAccumulator::new(k);
                for &cand in &candidates {
                    acc.offer(cand);
                }
                black_box(acc.len())
            })
        });
    }
    group.finish();
}

fn bench_profile_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile");
    let mut rng = StdRng::seed_from_u64(13);
    let a = random_profile(&mut rng, 128, 1024);
    let b = random_profile(&mut rng, 128, 1024);
    group.bench_function("dot_128", |bencher| bencher.iter(|| black_box(a.dot(&b))));
    group.bench_function("common_items_128", |bencher| {
        bencher.iter(|| black_box(a.common_items(&b)))
    });
    group.bench_function("l2_norm_128", |bencher| {
        bencher.iter(|| black_box(a.l2_norm()))
    });
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_topk, bench_profile_ops);
criterion_main!(benches);
