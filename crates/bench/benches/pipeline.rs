//! Criterion benchmark: one full five-phase engine iteration
//! end-to-end (small instance; the experiment binaries cover scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::WorkingDir;

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("iteration_n1000_m8_k8", |b| {
        b.iter_batched(
            || {
                let workload = WorkloadConfig::recommender().build(1000, 3);
                let config = EngineConfig::builder(1000)
                    .k(8)
                    .num_partitions(8)
                    .measure(workload.measure)
                    .seed(3)
                    .build()
                    .expect("config");
                let wd = WorkingDir::temp("bench_pipeline").expect("workdir");
                KnnEngine::new(config, workload.profiles, wd).expect("engine")
            },
            |mut engine| {
                let report = engine.run_iteration().expect("iteration");
                black_box(report.sims_computed);
                engine.into_working_dir().destroy().expect("cleanup");
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
