//! Criterion benchmarks: PI-graph scheduling, op simulation, and
//! partitioners — the phase-1/3 planning costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use knn_core::partition::PartitionerKind;
use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::PiGraph;
use knn_graph::generators::{core_periphery, CorePeripheryConfig};
use knn_graph::DiGraph;

fn pi_fixture(n: usize) -> PiGraph {
    let edges = core_periphery(
        CorePeripheryConfig::new(n, n * 5, 17)
            .with_core_fraction(0.1)
            .with_p_periphery(0.05),
    );
    PiGraph::from_network_shape(n, &edges)
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    group.sample_size(20);
    let pi = pi_fixture(2000);
    for h in Heuristic::ALL {
        group.bench_with_input(BenchmarkId::new("order", h.to_string()), &h, |b, h| {
            b.iter(|| black_box(h.schedule(&pi).len()))
        });
    }
    let schedule = Heuristic::DegreeLowHigh.schedule(&pi);
    group.bench_function("simulate_ops", |b| {
        b.iter(|| black_box(simulate_schedule_ops(&schedule, 2).total_ops()))
    });
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    let edges = core_periphery(
        CorePeripheryConfig::new(2000, 10_000, 23)
            .with_core_fraction(0.15)
            .with_p_periphery(0.1),
    );
    let g = DiGraph::from_undirected_edges(2000, edges).expect("graph");
    for kind in PartitionerKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("partition_m16", kind.to_string()),
            &kind,
            |b, kind| {
                let partitioner = kind.instantiate(5);
                b.iter(|| black_box(partitioner.partition(&g, 16).unwrap().num_partitions()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule, bench_partitioners);
criterion_main!(benches);
