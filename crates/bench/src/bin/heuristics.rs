//! **Experiment E6 — future work: "more heuristics for the PI graph
//! traversal".**
//!
//! Extends Table 1 in two directions the paper proposes: two extra
//! heuristics (greedy-chain and weight-aware) and a sweep over PI-graph
//! *families* (Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//! core–periphery) to show where degree-based ordering pays off — the
//! savings grow with degree skew and vanish on degree-regular
//! structures.
//!
//! Usage: `heuristics [--nodes N] [--edges N] [--seed N] [--slots N]`

use knn_bench::{opt_or, pct, TextTable};
use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::PiGraph;
use knn_datasets::Table1Dataset;
use knn_graph::generators::{
    barabasi_albert, core_periphery, erdos_renyi, watts_strogatz, CorePeripheryConfig,
};

fn ops_row(name: &str, n: usize, pairs: &[(u32, u32)], slots: usize, t: &mut TextTable) {
    let pi = PiGraph::from_network_shape(n, pairs);
    let ops = |h: Heuristic| simulate_schedule_ops(&h.schedule(&pi), slots).total_ops() as f64;
    let seq = ops(Heuristic::Sequential);
    let mut cells = vec![name.to_string(), pairs.len().to_string(), format!("{seq}")];
    for h in [
        Heuristic::DegreeHighLow,
        Heuristic::DegreeLowHigh,
        Heuristic::GreedyChain,
        Heuristic::WeightAware,
    ] {
        cells.push(format!("{} ({})", ops(h), pct(ops(h), seq)));
    }
    t.row(&cells);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "nodes", 5000);
    let e: usize = opt_or(&args, "edges", 25_000);
    let seed: u64 = opt_or(&args, "seed", 42);
    let slots: usize = opt_or(&args, "slots", 2);

    println!("E6 heuristic ablation (slots={slots}, seed={seed})");
    println!("\npart 1: synthetic PI-graph families (n={n}, |E|={e})\n");
    let headers = [
        "family",
        "pairs",
        "seq",
        "high-low",
        "low-high",
        "greedy-chain",
        "weight-aware",
    ];
    let mut t = TextTable::new(&headers);
    ops_row("erdos-renyi", n, &erdos_renyi(n, e, seed), slots, &mut t);
    ops_row(
        "barabasi-albert",
        n,
        &barabasi_albert(n, e / n, seed),
        slots,
        &mut t,
    );
    ops_row(
        "watts-strogatz",
        n,
        &watts_strogatz(n, e / n, 0.1, seed),
        slots,
        &mut t,
    );
    ops_row(
        "core-periphery",
        n,
        &core_periphery(
            CorePeripheryConfig::new(n, e, seed)
                .with_core_fraction(0.1)
                .with_p_periphery(0.05),
        ),
        slots,
        &mut t,
    );
    t.print();

    println!("\npart 2: the six Table-1 replicas with all five heuristics\n");
    let mut t = TextTable::new(&headers);
    for ds in Table1Dataset::ALL {
        let row = ds.paper_row();
        ops_row(row.label, row.nodes, &ds.generate(seed), slots, &mut t);
    }
    t.print();

    println!("\nexpected shape: ER/WS (degree-regular) show ~no degree-heuristic benefit;");
    println!("BA and core-periphery (skewed) show the paper's 5-15% band; greedy-chain");
    println!("adds boundary reuse on top; weight-aware matters once bucket sizes vary.");
}
