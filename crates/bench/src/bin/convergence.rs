//! **Experiment E7 — KNN quality over iterations.**
//!
//! The paper's §1 claims the iterate-compare-keep-top-K process
//! converges to the KNN graph recommender systems need. This
//! experiment measures it: recall against the exact brute-force graph
//! after every engine iteration, the edge-change fraction δ (the
//! convergence signal), and the same for in-memory NN-Descent — the
//! out-of-core engine should trace the same quality curve.
//!
//! Usage: `convergence [--users N] [--k N] [--iters N] [--seed N]`

use knn_baseline::{brute_force_knn, recall_at_k, NnDescent, NnDescentConfig};
use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::WorkingDir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 3000);
    let k: usize = opt_or(&args, "k", 10);
    let iters: usize = opt_or(&args, "iters", 8);
    let seed: u64 = opt_or(&args, "seed", 42);

    println!("E7 convergence: n={n}, K={k}, seed={seed}");
    let workload = WorkloadConfig::recommender().build(n, seed);
    println!("workload: {}\n", workload.name);

    println!("computing brute-force ground truth ...");
    let truth = brute_force_knn(&workload.profiles, &workload.measure, k, 4);

    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(8)
        .measure(workload.measure)
        .threads(2)
        .include_reverse(true)
        .seed(seed)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("convergence").expect("workdir");
    let mut engine = KnnEngine::new(config, workload.profiles.clone(), wd).expect("engine");

    println!("\nout-of-core engine (reverse offers on, like NN-Descent):\n");
    let mut t = TextTable::new(&["iter", "recall@K", "perfect users", "changed", "avg sim"]);
    for i in 0..iters {
        let report = engine.run_iteration().expect("iteration");
        let recall = recall_at_k(engine.graph(), &truth);
        t.row(&[
            (i + 1).to_string(),
            format!("{:.4}", recall.mean_recall),
            format!("{}/{}", recall.perfect_users, recall.users_measured),
            format!("{:.2}%", report.changed_fraction * 100.0),
            format!(
                "{:.4}",
                engine.graph().total_similarity() / engine.graph().num_edges().max(1) as f64
            ),
        ]);
        if report.changed_fraction < 0.001 {
            break;
        }
    }
    t.print();
    engine.into_working_dir().destroy().expect("cleanup");

    // Ablation: the paper's forward-only candidate rule (tuples offer
    // d to s only) vs the NN-Descent-style reverse join used above.
    println!("\nablation: forward-only offers (paper-faithful, no reverse join):\n");
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(8)
        .measure(workload.measure)
        .threads(2)
        .include_reverse(false)
        .seed(seed)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("convergence_fwd").expect("workdir");
    let mut forward = KnnEngine::new(config, workload.profiles.clone(), wd).expect("engine");
    let mut t = TextTable::new(&["iter", "recall@K", "changed"]);
    for i in 0..iters {
        let report = forward.run_iteration().expect("iteration");
        let recall = recall_at_k(forward.graph(), &truth);
        t.row(&[
            (i + 1).to_string(),
            format!("{:.4}", recall.mean_recall),
            format!("{:.2}%", report.changed_fraction * 100.0),
        ]);
        if report.changed_fraction < 0.001 {
            break;
        }
    }
    t.print();
    forward.into_working_dir().destroy().expect("cleanup");

    println!("\nNN-Descent (in-memory reference [1], same K):\n");
    let outcome = NnDescent::new(
        &workload.profiles,
        &workload.measure,
        NnDescentConfig::new(k, seed),
    )
    .run();
    let recall = recall_at_k(&outcome.graph, &truth);
    println!(
        "  converged={} after {} iterations, {} similarity evaluations",
        outcome.converged, outcome.iterations, outcome.sims_computed
    );
    println!(
        "  recall@K = {:.4} ({} / {} users perfect)",
        recall.mean_recall, recall.perfect_users, recall.users_measured
    );
    println!("\nexpected shape: recall climbs steeply in the first 2-3 iterations and");
    println!("plateaus near 1.0 as the changed-edge fraction collapses below δ.");
}
