//! **Experiment C1 — what locality-aware placement buys.**
//!
//! Paired, alternating runs **in one process** on the
//! planted-community workload: the hash-style random partitioner with
//! a uniform-random `G(0)` versus the cluster packer with a
//! cluster-seeded `G(0)` (the `knn-cluster` pre-pass drives both).
//!
//! Part 1 measures the I/O side on identical tuple workloads: spill
//! bytes in a single process, exchange bytes across a sharded fabric,
//! the intra-partition tuple fraction, and the replication objective.
//! Part 2 measures the initialization side: iterations needed to reach
//! the pinned `recall_regression.rs` floors from a random versus a
//! cluster-seeded start, and the converged recall of both (the floors
//! must hold either way — locality buys I/O and iterations, never
//! recall).
//!
//! Emits one JSON document on stdout (committed as
//! `BENCH_cluster.json`) and human-readable tables on stderr.
//!
//! Usage: `cluster_locality [--users N] [--k N] [--partitions N]
//! [--shards N] [--threads N] [--seed N] [--iters N]`

use std::time::Instant;

use knn_baseline::{brute_force_knn, recall_at_k};
use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine, PartitionerKind};
use knn_datasets::WorkloadConfig;
use knn_shard::ShardedEngine;
use knn_sim::Measure;

/// One paired variant: partitioner + initialization, always changed
/// together (the baseline is the engine's hash-style default end to
/// end, the treatment is the full locality stack).
#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    kind: PartitionerKind,
    cluster_init: bool,
}

const VARIANTS: [Variant; 2] = [
    Variant {
        name: "random",
        kind: PartitionerKind::Random,
        cluster_init: false,
    },
    Variant {
        name: "cluster",
        kind: PartitionerKind::Cluster,
        cluster_init: true,
    },
];

#[allow(clippy::too_many_arguments)]
fn config(
    n: usize,
    k: usize,
    m: usize,
    threads: usize,
    seed: u64,
    measure: Measure,
    v: Variant,
    spill: bool,
) -> EngineConfig {
    let mut b = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .partitioner(v.kind)
        .cluster_init(v.cluster_init)
        .measure(measure)
        .threads(threads)
        .seed(seed);
    if spill {
        // Force real spill traffic so the locality win shows up in
        // bytes on disk, not just in staging-memory bucket counts.
        b = b.spill_threshold(64).tuple_table_memory(Some(1024));
    }
    b.build().expect("config")
}

struct LocalityRun {
    variant: &'static str,
    bytes_spilled: Vec<u64>,
    exchange_bytes: Vec<u64>,
    exchange_tuples: Vec<u64>,
    replication_cost: Vec<u64>,
    intra_fraction: Vec<f64>,
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn join_f64(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.4}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn sum(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

/// Fractional reduction of `treated` vs `base` (positive = treated is
/// smaller).
fn reduction(base: u64, treated: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    1.0 - treated as f64 / base as f64
}

struct FloorRun {
    variant: &'static str,
    iters_to_floor: Option<usize>,
    converged_iters: usize,
    recall_per_iter: Vec<f64>,
    final_recall: f64,
}

/// Runs one variant until convergence (change < 1%) or `max_iters`,
/// scoring recall against `truth` after every iteration.
#[allow(clippy::too_many_arguments)]
fn run_to_floor(
    workload: &WorkloadConfig,
    n: usize,
    k: usize,
    threads: usize,
    seed: u64,
    floor: f64,
    max_iters: usize,
    v: Variant,
) -> FloorRun {
    let built = workload.build(n, seed);
    let truth = brute_force_knn(&built.profiles, &built.measure, k, threads);
    let cfg = config(n, k, 8, threads, seed, built.measure, v, false);
    let mut engine = KnnEngine::in_memory(cfg, built.profiles).expect("engine");
    let mut recall_per_iter = Vec::new();
    let mut iters_to_floor = None;
    let mut converged_iters = max_iters;
    for iter in 1..=max_iters {
        let report = engine.run_iteration().expect("iteration");
        let recall = recall_at_k(engine.graph(), &truth).mean_recall;
        recall_per_iter.push(recall);
        if iters_to_floor.is_none() && recall >= floor {
            iters_to_floor = Some(iter);
        }
        if report.changed_fraction < 0.01 {
            converged_iters = iter;
            break;
        }
    }
    FloorRun {
        variant: v.name,
        iters_to_floor,
        converged_iters,
        final_recall: recall_per_iter.last().copied().unwrap_or(0.0),
        recall_per_iter,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 600);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let shards: usize = opt_or(&args, "shards", 3);
    let threads: usize = opt_or(&args, "threads", 2);
    let seed: u64 = opt_or(&args, "seed", 42);
    let iters: usize = opt_or(&args, "iters", 4);

    eprintln!(
        "C1 cluster locality: n={n}, K={k}, m={m}, shards={shards}, threads={threads}, \
         seed={seed}, iters={iters}"
    );
    let started = Instant::now();

    // ---- Part 1: spill + exchange traffic, paired and alternating.
    // Both variants run in lockstep in this one process: the same
    // workload bytes, the same iteration cadence, only placement and
    // G(0) differ.
    let workload = WorkloadConfig::communities().build(n, seed);
    let mut single: Vec<(KnnEngine, LocalityRun)> = VARIANTS
        .iter()
        .map(|&v| {
            let cfg = config(n, k, m, threads, seed, workload.measure, v, true);
            let engine = KnnEngine::in_memory(cfg, workload.profiles.clone()).expect("engine");
            (
                engine,
                LocalityRun {
                    variant: v.name,
                    bytes_spilled: Vec::new(),
                    exchange_bytes: Vec::new(),
                    exchange_tuples: Vec::new(),
                    replication_cost: Vec::new(),
                    intra_fraction: Vec::new(),
                },
            )
        })
        .collect();
    let mut sharded: Vec<ShardedEngine> = VARIANTS
        .iter()
        .map(|&v| {
            let cfg = config(n, k, m, threads, seed, workload.measure, v, true);
            ShardedEngine::in_memory(cfg, workload.profiles.clone(), shards).expect("engine")
        })
        .collect();

    for _ in 0..iters {
        for ((engine, run), shard_engine) in single.iter_mut().zip(&mut sharded) {
            let report = engine.run_iteration().expect("iteration");
            run.bytes_spilled.push(report.bytes_spilled);
            run.replication_cost.push(report.replication_cost);
            run.intra_fraction
                .push(report.intra_partition_tuple_fraction());
            let sharded_report = shard_engine.run_iteration().expect("sharded iteration");
            run.exchange_bytes.push(sharded_report.exchange.bytes);
            run.exchange_tuples.push(sharded_report.exchange.tuples);
        }
    }
    // The determinism contract, checked in anger: the sharded twin of
    // each variant lands on the same graph as its single-process run.
    for ((engine, run), shard_engine) in single.iter().zip(&sharded) {
        assert_eq!(
            engine.graph(),
            shard_engine.graph(),
            "{}: sharded twin diverged",
            run.variant
        );
    }

    let spill_reduction = reduction(
        sum(&single[0].1.bytes_spilled),
        sum(&single[1].1.bytes_spilled),
    );
    let exchange_reduction = reduction(
        sum(&single[0].1.exchange_bytes),
        sum(&single[1].1.exchange_bytes),
    );

    let mut table = TextTable::new(&[
        "variant",
        "spilled B",
        "xchg B",
        "xchg tuples",
        "repl cost",
        "intra frac",
    ]);
    for (_, run) in &single {
        table.row(&[
            run.variant.to_string(),
            sum(&run.bytes_spilled).to_string(),
            sum(&run.exchange_bytes).to_string(),
            sum(&run.exchange_tuples).to_string(),
            sum(&run.replication_cost).to_string(),
            format!(
                "{:.3}",
                run.intra_fraction.iter().sum::<f64>() / run.intra_fraction.len().max(1) as f64
            ),
        ]);
    }
    eprintln!("{}", table.render());
    eprintln!(
        "spill bytes: -{:.1}%   exchange bytes: -{:.1}%",
        spill_reduction * 100.0,
        exchange_reduction * 100.0
    );

    // ---- Part 2: iterations-to-floor from random vs cluster-seeded
    // G(0), on the exact workloads and floors recall_regression.rs
    // pins.
    let floors: [(&str, WorkloadConfig, usize, usize, u64, f64); 2] = [
        (
            "recommender",
            WorkloadConfig::recommender(),
            400,
            10,
            42,
            0.93,
        ),
        ("tags", WorkloadConfig::tags(), 400, 10, 7, 0.80),
    ];
    let mut floor_rows = Vec::new();
    let mut table = TextTable::new(&[
        "workload",
        "variant",
        "iters to floor",
        "converged",
        "final recall",
    ]);
    for (label, workload, fn_users, fk, fseed, floor) in &floors {
        let runs: Vec<FloorRun> = VARIANTS
            .iter()
            .map(|&v| run_to_floor(workload, *fn_users, *fk, 4, *fseed, *floor, 20, v))
            .collect();
        for run in &runs {
            table.row(&[
                label.to_string(),
                run.variant.to_string(),
                run.iters_to_floor
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "never".to_string()),
                run.converged_iters.to_string(),
                format!("{:.4}", run.final_recall),
            ]);
        }
        floor_rows.push((label, floor, runs));
    }
    eprintln!("{}", table.render());

    let locality_json: Vec<String> = single
        .iter()
        .map(|(_, run)| {
            format!(
                r#"{{"variant":"{}","bytes_spilled":[{}],"exchange_bytes":[{}],"exchange_tuples":[{}],"replication_cost":[{}],"intra_partition_tuple_fraction":[{}]}}"#,
                run.variant,
                join_u64(&run.bytes_spilled),
                join_u64(&run.exchange_bytes),
                join_u64(&run.exchange_tuples),
                join_u64(&run.replication_cost),
                join_f64(&run.intra_fraction),
            )
        })
        .collect();
    let floor_json: Vec<String> = floor_rows
        .iter()
        .map(|(label, floor, runs)| {
            let variants: Vec<String> = runs
                .iter()
                .map(|r| {
                    format!(
                        r#"{{"variant":"{}","iters_to_floor":{},"converged_iters":{},"final_recall":{:.4},"recall_per_iter":[{}]}}"#,
                        r.variant,
                        r.iters_to_floor
                            .map(|i| i.to_string())
                            .unwrap_or_else(|| "null".to_string()),
                        r.converged_iters,
                        r.final_recall,
                        join_f64(&r.recall_per_iter),
                    )
                })
                .collect();
            format!(
                r#"{{"workload":"{label}","floor":{floor},"variants":[{}]}}"#,
                variants.join(",")
            )
        })
        .collect();
    println!(
        r#"{{"bench":"cluster_locality","users":{n},"k":{k},"partitions":{m},"shards":{shards},"threads":{threads},"seed":{seed},"iters":{iters},"wall_s":{:.2},"locality":{{"graphs_equal":true,"runs":[{}],"spill_bytes_reduction":{:.4},"exchange_bytes_reduction":{:.4}}},"convergence":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        locality_json.join(","),
        spill_reduction,
        exchange_reduction,
        floor_json.join(",")
    );
}
