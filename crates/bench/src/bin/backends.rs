//! **Experiment S2 — storage backend comparison.**
//!
//! Runs identical engine workloads on `DiskBackend` and `MemBackend`
//! across several user counts and reports per-iteration wall time plus
//! the backend-metered `IoStats`. The two engines are seeded
//! identically, so their graphs are equal by construction (asserted) —
//! the experiment isolates pure storage cost. The headline number is
//! the in-RAM speedup the `StorageBackend` seam buys when the profile
//! set fits in memory.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory,
//! committed as `BENCH_backends.json`) and a human-readable table on
//! stderr.
//!
//! Usage: `backends [--sizes LIST] [--k N] [--partitions N] [--seed N]
//! [--iters N]` (LIST comma-separated, default `1000,10000,50000`)

use std::sync::Arc;
use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::{DiskBackend, MemBackend, StorageBackend};

struct Run {
    users: usize,
    backend: &'static str,
    iter_ms: Vec<f64>,
    bytes_read: u64,
    bytes_written: u64,
    read_ops: u64,
    write_ops: u64,
    /// Checksum of the final graph (edge count) so backend equality is
    /// visible in the artifact.
    edges: usize,
}

fn build_engine(
    n: usize,
    k: usize,
    m: usize,
    seed: u64,
    backend: Arc<dyn StorageBackend>,
) -> KnnEngine {
    let workload = WorkloadConfig::recommender().build(n, seed);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("config");
    let engine =
        KnnEngine::new_on(config, workload.profiles, Arc::clone(&backend)).expect("engine");
    backend.stats().reset(); // measure the iteration loop, not setup
    engine
}

fn finish(n: usize, engine: &KnnEngine, iter_ms: Vec<f64>) -> Run {
    let io = engine.io_snapshot();
    Run {
        users: n,
        backend: engine.backend().name(),
        iter_ms,
        bytes_read: io.bytes_read,
        bytes_written: io.bytes_written,
        read_ops: io.read_ops,
        write_ops: io.write_ops,
        edges: engine.graph().num_edges(),
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes_arg: String = opt_or(&args, "sizes", "1000,10000,50000".to_string());
    let sizes: Vec<usize> = sizes_arg
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .expect("--sizes takes comma-separated counts")
        })
        .collect();
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let iters: usize = opt_or(&args, "iters", 3);

    eprintln!("S2 storage backends: sizes={sizes:?}, K={k}, m={m}, seed={seed}, iters={iters}");

    let started = Instant::now();
    let mut runs = Vec::new();
    for &n in &sizes {
        let disk = DiskBackend::temp("bench_backends").expect("disk backend");
        let wd = disk.working_dir().expect("disk").clone();
        let mut disk_engine = build_engine(n, k, m, seed, Arc::new(disk));
        let mut mem_engine = build_engine(n, k, m, seed, Arc::new(MemBackend::new()));
        // Interleave the two engines' iterations so machine drift
        // (thermal, cache, allocator state) hits both alike.
        let mut disk_ms = Vec::with_capacity(iters);
        let mut mem_ms = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            disk_engine.run_iteration().expect("disk iteration");
            disk_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            mem_engine.run_iteration().expect("mem iteration");
            mem_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                disk_engine.graph(),
                mem_engine.graph(),
                "backends must agree after every iteration"
            );
        }
        runs.push(finish(n, &disk_engine, disk_ms));
        runs.push(finish(n, &mem_engine, mem_ms));
        drop(disk_engine);
        wd.destroy().expect("cleanup");
    }

    let mut table = TextTable::new(&[
        "users",
        "backend",
        "mean iter ms",
        "MB read",
        "MB written",
        "speedup",
    ]);
    for pair in runs.chunks(2) {
        let (disk, mem) = (&pair[0], &pair[1]);
        for r in pair {
            table.row(&[
                r.users.to_string(),
                r.backend.to_string(),
                format!("{:.1}", mean(&r.iter_ms)),
                format!("{:.1}", r.bytes_read as f64 / 1e6),
                format!("{:.1}", r.bytes_written as f64 / 1e6),
                if std::ptr::eq(r, mem) {
                    format!("{:.2}x", mean(&disk.iter_ms) / mean(&mem.iter_ms))
                } else {
                    "1.00x".to_string()
                },
            ]);
        }
    }
    eprintln!("{}", table.render());

    // The BENCH-trajectory JSON document.
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            let iters_json: Vec<String> = r.iter_ms.iter().map(|ms| format!("{ms:.2}")).collect();
            format!(
                r#"{{"users":{},"backend":"{}","iter_ms":[{}],"mean_iter_ms":{:.2},"bytes_read":{},"bytes_written":{},"read_ops":{},"write_ops":{},"edges":{}}}"#,
                r.users,
                r.backend,
                iters_json.join(","),
                mean(&r.iter_ms),
                r.bytes_read,
                r.bytes_written,
                r.read_ops,
                r.write_ops,
                r.edges
            )
        })
        .collect();
    println!(
        r#"{{"bench":"backends","k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
