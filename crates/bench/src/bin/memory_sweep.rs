//! **Experiment E2 — future work: "amounts of memory".**
//!
//! The engine's memory budget is `cache_slots × (n/m)` profiles: the
//! partition count `m` *is* the memory knob. This sweep holds the
//! workload fixed and varies `m`, reporting the resident-set estimate,
//! partition ops, bytes moved, and iteration time — the classic
//! memory/I-O trade-off curve. A second sweep varies the cache slot
//! count at fixed `m` (more slots ≈ more RAM given to the same layout).
//!
//! Usage: `memory_sweep [--users N] [--k N] [--seed N]`

use std::time::Instant;

use knn_bench::{fmt_bytes, opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::WorkingDir;

fn run_once(
    n: usize,
    k: usize,
    m: usize,
    slots: usize,
    seed: u64,
) -> (std::time::Duration, u64, u64, u64) {
    let workload = WorkloadConfig::recommender().build(n, seed);
    let resident_estimate = (workload.profiles.approx_bytes() / m) * slots;
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .cache_slots(slots)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("memory_sweep").expect("workdir");
    let mut engine = KnnEngine::new(config, workload.profiles, wd).expect("engine");
    let t0 = Instant::now();
    let report = engine.run_iteration().expect("iteration");
    let elapsed = t0.elapsed();
    let result = (
        elapsed,
        report.cache.total_ops(),
        report.total_bytes(),
        resident_estimate as u64,
    );
    engine.into_working_dir().destroy().expect("cleanup");
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 10_000);
    let k: usize = opt_or(&args, "k", 10);
    let seed: u64 = opt_or(&args, "seed", 42);

    println!("E2 memory sweep: n={n}, K={k}, seed={seed}");
    println!("\npart 1: vary partition count m (2-slot cache, smaller partitions = less RAM)\n");
    let mut t = TextTable::new(&[
        "m",
        "resident (est)",
        "part ops",
        "bytes moved",
        "iter time",
    ]);
    for m in [4, 8, 16, 32, 64] {
        let (elapsed, ops, bytes, resident) = run_once(n, k, m, 2, seed);
        t.row(&[
            m.to_string(),
            fmt_bytes(resident),
            ops.to_string(),
            fmt_bytes(bytes),
            format!("{elapsed:.2?}"),
        ]);
    }
    t.print();

    println!("\npart 2: vary cache slots at m=32 (more slots = more RAM, fewer reloads)\n");
    let mut t = TextTable::new(&[
        "slots",
        "resident (est)",
        "part ops",
        "bytes moved",
        "iter time",
    ]);
    for slots in [2, 3, 4, 8, 16] {
        let (elapsed, ops, bytes, resident) = run_once(n, k, 32, slots, seed);
        t.row(&[
            slots.to_string(),
            fmt_bytes(resident),
            ops.to_string(),
            fmt_bytes(bytes),
            format!("{elapsed:.2?}"),
        ]);
    }
    t.print();
    println!("\nexpected shape: more partitions → smaller memory, more load/unload ops;");
    println!("more cache slots → fewer ops at the same layout (diminishing returns).");
}
