//! **Experiment S3 — partition-parallel iteration scaling.**
//!
//! Runs identical engine workloads at several worker-thread budgets
//! (`EngineConfig::threads`, the engine-wide knob driving phases 1, 2,
//! 4, and 5) and reports per-iteration wall time, per-phase time, and
//! the speedup over the first listed thread count (`speedup_vs_first`
//! in the JSON — put 1 first for a true single-thread baseline, as the
//! default list does). Every engine is seeded
//! identically, so all graphs are equal by construction — asserted
//! after every iteration, making the bench double as a determinism
//! smoke test.
//!
//! Runs on `MemBackend` so the numbers isolate the compute scaling of
//! the iteration pipeline rather than disk latency (the storage axis
//! is experiment S2, `backends`).
//!
//! Besides wall times, the JSON carries the per-iteration phase-4
//! scoring-funnel trajectory (`p4_ms`, `sims_per_iter`,
//! `sims_skipped`, `sims_pruned`, `accums_seeded`): as the graph
//! converges, cross-iteration pair suppression removes most kernel
//! evaluations and phase 4's cost falls with it — the committed
//! artifact runs 8 iterations per configuration so the steady-state
//! regime is on record, not just the cold bootstrap (the paired
//! funnel-vs-rescore measurement is experiment S5, `scoring_funnel`).
//!
//! Emits one JSON document on stdout (for the BENCH trajectory,
//! committed as `BENCH_parallel.json`) and a human-readable table on
//! stderr.
//!
//! Usage: `parallel_iteration [--sizes LIST] [--threads LIST]
//! [--k N] [--partitions N] [--seed N] [--iters N]`
//! (defaults: sizes `10000,50000`, threads `1,2,4,8`).

use std::sync::Arc;
use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::MemBackend;

struct Run {
    users: usize,
    threads: usize,
    iter_ms: Vec<f64>,
    /// Mean per-phase milliseconds across the measured iterations
    /// (the coarse summary; the per-iteration arrays below are the
    /// trajectory).
    phase_ms: [f64; 5],
    /// Per-iteration phase-1 wall time (partitioning + layout).
    p1_ms: Vec<f64>,
    /// Per-iteration phase-2 wall time (the tuple pipeline).
    p2_ms: Vec<f64>,
    /// Per-iteration phase-4 wall time (the hot-path trajectory: the
    /// scoring funnel makes later iterations cheaper).
    p4_ms: Vec<f64>,
    /// Per-iteration phase-2 spill traffic.
    spilled_per_iter: Vec<u64>,
    /// Per-iteration scoring-funnel counters.
    sims_per_iter: Vec<u64>,
    skipped_per_iter: Vec<u64>,
    pruned_per_iter: Vec<u64>,
    seeded_per_iter: Vec<u64>,
    sims_computed: u64,
    edges: usize,
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn parse_list(arg: &str, what: &str) -> Vec<usize> {
    arg.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--{what} takes comma-separated counts"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = parse_list(&opt_or(&args, "sizes", "10000,50000".to_string()), "sizes");
    let thread_counts = parse_list(&opt_or(&args, "threads", "1,2,4,8".to_string()), "threads");
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let iters: usize = opt_or(&args, "iters", 3);

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!(
        "S3 parallel iteration: sizes={sizes:?}, threads={thread_counts:?}, K={k}, m={m}, \
         seed={seed}, iters={iters}, host_cpus={host_cpus}"
    );
    if thread_counts.iter().any(|&t| t > host_cpus) {
        eprintln!(
            "WARNING: host exposes only {host_cpus} CPU(s); thread counts above that \
             timeslice one core and cannot show wall-clock speedup. The graph-equality \
             determinism checks still run in full."
        );
    }

    let started = Instant::now();
    let mut runs: Vec<Run> = Vec::new();
    for &n in &sizes {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let mut reference_graph = None;
        for &threads in &thread_counts {
            let config = EngineConfig::builder(n)
                .k(k)
                .num_partitions(m)
                .measure(workload.measure)
                .threads(threads)
                .seed(seed)
                .build()
                .expect("config");
            let mut engine = KnnEngine::new_on(
                config,
                workload.profiles.clone(),
                Arc::new(MemBackend::new()),
            )
            .expect("engine");
            let mut iter_ms = Vec::with_capacity(iters);
            let mut phase_ms = [0f64; 5];
            let mut p1_ms = Vec::with_capacity(iters);
            let mut p2_ms = Vec::with_capacity(iters);
            let mut p4_ms = Vec::with_capacity(iters);
            let mut spilled_per_iter = Vec::with_capacity(iters);
            let mut sims_per_iter = Vec::with_capacity(iters);
            let mut skipped_per_iter = Vec::with_capacity(iters);
            let mut pruned_per_iter = Vec::with_capacity(iters);
            let mut seeded_per_iter = Vec::with_capacity(iters);
            let mut sims = 0u64;
            for _ in 0..iters {
                let t0 = Instant::now();
                let report = engine.run_iteration().expect("iteration");
                iter_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                for (acc, d) in phase_ms.iter_mut().zip(report.phase_durations) {
                    *acc += d.as_secs_f64() * 1e3 / iters as f64;
                }
                // Per-iteration per-phase trajectory, symmetric across
                // the pipeline's hot phases (1, 2, and 4).
                p1_ms.push(report.phase_durations[0].as_secs_f64() * 1e3);
                p2_ms.push(report.phase_durations[1].as_secs_f64() * 1e3);
                p4_ms.push(report.phase_durations[3].as_secs_f64() * 1e3);
                spilled_per_iter.push(report.bytes_spilled);
                sims_per_iter.push(report.sims_computed);
                skipped_per_iter.push(report.sims_skipped);
                pruned_per_iter.push(report.sims_pruned);
                seeded_per_iter.push(report.accums_seeded);
                sims += report.sims_computed;
            }
            // The determinism guarantee, checked in anger: every
            // thread count lands on the identical graph.
            match &reference_graph {
                None => reference_graph = Some(engine.graph().clone()),
                Some(g) => assert_eq!(
                    g,
                    engine.graph(),
                    "threads={threads} diverged from threads={}",
                    thread_counts[0]
                ),
            }
            runs.push(Run {
                users: n,
                threads,
                iter_ms,
                phase_ms,
                p1_ms,
                p2_ms,
                p4_ms,
                spilled_per_iter,
                sims_per_iter,
                skipped_per_iter,
                pruned_per_iter,
                seeded_per_iter,
                sims_computed: sims,
                edges: engine.graph().num_edges(),
            });
        }
    }

    let mut table = TextTable::new(&[
        "users",
        "threads",
        "mean iter ms",
        "p1 ms",
        "p2 ms",
        "p4 ms",
        "p5 ms",
        "speedup",
        "sims/iter",
        "skipped/iter",
        "pruned/iter",
    ]);
    for group in runs.chunks(thread_counts.len()) {
        let base = mean(&group[0].iter_ms);
        for r in group {
            table.row(&[
                r.users.to_string(),
                r.threads.to_string(),
                format!("{:.1}", mean(&r.iter_ms)),
                format!("{:.1}", r.phase_ms[0]),
                format!("{:.1}", r.phase_ms[1]),
                format!("{:.1}", r.phase_ms[3]),
                format!("{:.1}", r.phase_ms[4]),
                format!("{:.2}x", base / mean(&r.iter_ms)),
                join_u64(&r.sims_per_iter),
                join_u64(&r.skipped_per_iter),
                join_u64(&r.pruned_per_iter),
            ]);
        }
    }
    eprintln!("{}", table.render());

    // The BENCH-trajectory JSON document.
    let rows: Vec<String> = runs
        .chunks(thread_counts.len())
        .flat_map(|group| {
            let base = mean(&group[0].iter_ms);
            group.iter().map(move |r| {
                let fmt_ms = |xs: &[f64]| {
                    xs.iter()
                        .map(|ms| format!("{ms:.2}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    r#"{{"users":{},"threads":{},"iter_ms":[{}],"mean_iter_ms":{:.2},"phase_ms":[{}],"p1_ms":[{}],"p2_ms":[{}],"p4_ms":[{}],"speedup_vs_first":{:.3},"sims_computed":{},"sims_per_iter":[{}],"sims_skipped":[{}],"sims_pruned":[{}],"accums_seeded":[{}],"bytes_spilled":[{}],"edges":{}}}"#,
                    r.users,
                    r.threads,
                    fmt_ms(&r.iter_ms),
                    mean(&r.iter_ms),
                    fmt_ms(&r.phase_ms),
                    fmt_ms(&r.p1_ms),
                    fmt_ms(&r.p2_ms),
                    fmt_ms(&r.p4_ms),
                    base / mean(&r.iter_ms),
                    r.sims_computed,
                    join_u64(&r.sims_per_iter),
                    join_u64(&r.skipped_per_iter),
                    join_u64(&r.pruned_per_iter),
                    join_u64(&r.seeded_per_iter),
                    join_u64(&r.spilled_per_iter),
                    r.edges
                )
            })
        })
        .collect();
    println!(
        r#"{{"bench":"parallel_iteration","backend":"mem","k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"host_cpus":{host_cpus},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
