//! **Experiments E3 + E5 — future work: "HDD and SSD" and "throughput
//! from the disk IO operations".**
//!
//! Runs one engine iteration, records the exact per-phase I/O trace
//! (operation counts and byte volumes are real; the files are real),
//! then replays the trace under the HDD / SSD / RAM-disk cost models
//! to compare devices. Also shows how the traversal-heuristic choice
//! translates into device time: saved load/unload operations matter
//! far more on a seek-bound HDD.
//!
//! Usage: `disk_models [--users N] [--k N] [--partitions N] [--seed N]`

use knn_bench::{fmt_bytes, opt_or, TextTable};
use knn_core::metrics::PHASE_NAMES;
use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::{EngineConfig, KnnEngine, PiGraph};
use knn_datasets::{Table1Dataset, WorkloadConfig};
use knn_store::{DiskModel, IoSnapshot, WorkingDir};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 10_000);
    let k: usize = opt_or(&args, "k", 10);
    let m: usize = opt_or(&args, "partitions", 16);
    let seed: u64 = opt_or(&args, "seed", 42);

    println!("E3/E5 device models: n={n}, K={k}, m={m}, seed={seed}\n");
    let workload = WorkloadConfig::recommender().build(n, seed);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("disk_models").expect("workdir");
    let mut engine = KnnEngine::new(config, workload.profiles, wd).expect("engine");
    let report = engine.run_iteration().expect("iteration");

    println!("per-phase simulated device time (real byte/op trace, modeled latency):\n");
    let mut t = TextTable::new(&["phase", "trace", "hdd", "ssd", "ramdisk"]);
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        let io = report.phase_io[i];
        t.row(&[
            format!("{}. {name}", i + 1),
            format!(
                "{} ops / {}",
                io.read_ops + io.write_ops,
                fmt_bytes(io.bytes_total())
            ),
            format!("{:.3?}", DiskModel::hdd().simulated_time(&io)),
            format!("{:.3?}", DiskModel::ssd().simulated_time(&io)),
            format!("{:.3?}", DiskModel::ramdisk().simulated_time(&io)),
        ]);
    }
    let total: IoSnapshot = report
        .phase_io
        .iter()
        .fold(IoSnapshot::default(), |mut acc, io| {
            acc.bytes_read += io.bytes_read;
            acc.bytes_written += io.bytes_written;
            acc.read_ops += io.read_ops;
            acc.write_ops += io.write_ops;
            acc
        });
    t.row(&[
        "total".to_string(),
        format!(
            "{} ops / {}",
            total.read_ops + total.write_ops,
            fmt_bytes(total.bytes_total())
        ),
        format!("{:.3?}", DiskModel::hdd().simulated_time(&total)),
        format!("{:.3?}", DiskModel::ssd().simulated_time(&total)),
        format!("{:.3?}", DiskModel::ramdisk().simulated_time(&total)),
    ]);
    t.print();

    println!("\neffective throughput by device (bytes moved / simulated time):");
    for model in DiskModel::ALL {
        if let Some(bps) = model.effective_throughput(&total) {
            println!("  {:<8} {}/s", model.name, fmt_bytes(bps as u64));
        }
    }

    // Heuristic choice × device: translate Table-1 op counts into
    // simulated time assuming one partition load ≈ one sequential read
    // of a partition-sized file.
    println!("\nheuristic ops as device time on the Wiki-Vote replica");
    let row = Table1Dataset::WikiVote.paper_row();
    let edges = Table1Dataset::WikiVote.generate(seed);
    let pi = PiGraph::from_network_shape(row.nodes, &edges);
    let partition_bytes = 2 * 1024 * 1024u64; // a nominal 2 MiB partition
    let mut t = TextTable::new(&["heuristic", "ops", "hdd", "ssd"]);
    for h in Heuristic::ALL {
        let ops = simulate_schedule_ops(&h.schedule(&pi), 2).total_ops();
        let trace = IoSnapshot {
            bytes_read: ops * partition_bytes / 2,
            bytes_written: ops * partition_bytes / 2,
            read_ops: ops / 2,
            write_ops: ops / 2,
            ..Default::default()
        };
        t.row(&[
            h.to_string(),
            ops.to_string(),
            format!("{:.1?}", DiskModel::hdd().simulated_time(&trace)),
            format!("{:.1?}", DiskModel::ssd().simulated_time(&trace)),
        ]);
    }
    t.print();
    println!("\nexpected shape: hdd ≫ ssd ≫ ramdisk; heuristic savings are amplified on hdd.");
    engine.into_working_dir().destroy().expect("cleanup");
}
