//! **Experiment T1 — the paper's Table 1.**
//!
//! "# Load/unload operations using PI graph": for six networks, treat
//! the network itself as the PI-graph structure (exactly the paper's
//! framing: *"If the PI graph structure were to resemble these
//! networks"*) and count the partition load/unload operations each
//! traversal heuristic performs with two memory slots.
//!
//! The six graphs are seeded synthetic replicas matched to the paper's
//! node/edge counts (DESIGN.md §5); expect the same magnitudes and the
//! same ordering (degree-based beats sequential by ~5–15 %), not
//! digit-exact values.
//!
//! Usage: `table1 [--seed N] [--slots N] [--extended]`

use knn_bench::{flag, opt_or, pct, TextTable};
use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::PiGraph;
use knn_datasets::Table1Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = opt_or(&args, "seed", 42);
    let slots: usize = opt_or(&args, "slots", 2);
    let extended = flag(&args, "extended");

    println!("Table 1: # load/unload operations using PI graph (slots={slots}, seed={seed})");
    println!("paper numbers in parentheses; replicas match the paper's n and |E| exactly\n");

    let mut headers = vec!["Dataset", "Nodes", "Edges", "Seq.", "High-Low", "Low-High"];
    if extended {
        headers.push("Chain");
        headers.push("Weight");
    }
    let mut table = TextTable::new(&headers);

    let mut our_totals = [0u64; 3];
    let mut paper_totals = [0u64; 3];

    for dataset in Table1Dataset::ALL {
        let row = dataset.paper_row();
        let edges = dataset.generate(seed);
        let pi = PiGraph::from_network_shape(row.nodes, &edges);

        let ops = |h: Heuristic| simulate_schedule_ops(&h.schedule(&pi), slots).total_ops();
        let seq = ops(Heuristic::Sequential);
        let high_low = ops(Heuristic::DegreeHighLow);
        let low_high = ops(Heuristic::DegreeLowHigh);

        our_totals[0] += seq;
        our_totals[1] += high_low;
        our_totals[2] += low_high;
        paper_totals[0] += row.seq_ops;
        paper_totals[1] += row.high_low_ops;
        paper_totals[2] += row.low_high_ops;

        let mut cells = vec![
            row.label.to_string(),
            row.nodes.to_string(),
            row.edges.to_string(),
            format!("{seq} ({})", row.seq_ops),
            format!("{high_low} ({})", row.high_low_ops),
            format!("{low_high} ({})", row.low_high_ops),
        ];
        if extended {
            cells.push(ops(Heuristic::GreedyChain).to_string());
            cells.push(ops(Heuristic::WeightAware).to_string());
        }
        table.row(&cells);
    }
    table.print();

    println!("\nsavings vs sequential (ours | paper):");
    let mut savings = TextTable::new(&["Dataset", "High-Low", "Low-High"]);
    for dataset in Table1Dataset::ALL {
        let row = dataset.paper_row();
        let edges = dataset.generate(seed);
        let pi = PiGraph::from_network_shape(row.nodes, &edges);
        let ops = |h: Heuristic| simulate_schedule_ops(&h.schedule(&pi), slots).total_ops();
        let seq = ops(Heuristic::Sequential) as f64;
        savings.row(&[
            row.label.to_string(),
            format!(
                "{} | {}",
                pct(ops(Heuristic::DegreeHighLow) as f64, seq),
                pct(row.high_low_ops as f64, row.seq_ops as f64)
            ),
            format!(
                "{} | {}",
                pct(ops(Heuristic::DegreeLowHigh) as f64, seq),
                pct(row.low_high_ops as f64, row.seq_ops as f64)
            ),
        ]);
    }
    savings.print();

    println!(
        "\ntotals   ours: seq {} / high-low {} / low-high {}",
        our_totals[0], our_totals[1], our_totals[2]
    );
    println!(
        "        paper: seq {} / high-low {} / low-high {}",
        paper_totals[0], paper_totals[1], paper_totals[2]
    );
}
