//! **Experiment S5 — the phase-4 scoring-funnel effect, paired.**
//!
//! Runs two engines over the identical seeded workload in lockstep:
//! one with the scoring funnel (cross-iteration pair suppression +
//! bound filtering, the defaults) and one forced down the classic
//! full-rescore path. Because the two alternate iteration by
//! iteration inside one process, machine-level drift (thermal
//! throttling, timeslicing) hits both equally — the per-iteration
//! ratios isolate the funnel's real effect, which separate runs on a
//! noisy host cannot.
//!
//! After every iteration the two graphs are asserted **identical** —
//! the funnel's exactness contract, checked in anger at benchmark
//! scale.
//!
//! The expected shape: early iterations pay the funnel's bookkeeping
//! with little to suppress (a cold random graph churns everywhere);
//! once the graph approaches its fixed point, suppression removes
//! most kernel evaluations and phase 4's wall clock follows. The
//! steady-state summary aggregates the last three iterations.
//!
//! Emits one JSON document on stdout (committed as
//! `BENCH_scoring_funnel.json`) and a table on stderr.
//!
//! Usage: `scoring_funnel [--users N] [--iters N] [--k N]
//! [--partitions N] [--seed N]`

use std::sync::Arc;
use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::MemBackend;

struct IterRow {
    funnel_p4_ms: f64,
    plain_p4_ms: f64,
    funnel_sims: u64,
    plain_sims: u64,
    skipped: u64,
    pruned: u64,
    seeded: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let users: usize = opt_or(&args, "users", 50_000);
    let iters: usize = opt_or(&args, "iters", 8);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);

    eprintln!("S5 scoring funnel: users={users}, iters={iters}, K={k}, m={m}, seed={seed}");
    let workload = WorkloadConfig::recommender().build(users, seed);
    let build = |funnel_on: bool| {
        let config = EngineConfig::builder(users)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .threads(1)
            .prune_pairs(funnel_on)
            .bound_filter(funnel_on)
            .seed(seed)
            .build()
            .expect("config");
        KnnEngine::new_on(
            config,
            workload.profiles.clone(),
            Arc::new(MemBackend::new()),
        )
        .expect("engine")
    };
    let mut funnel = build(true);
    let mut plain = build(false);

    let started = Instant::now();
    let mut rows: Vec<IterRow> = Vec::new();
    for _ in 0..iters {
        let rf = funnel.run_iteration().expect("funnel iteration");
        let rp = plain.run_iteration().expect("plain iteration");
        // The exactness contract: the funnel never changes the graph.
        assert_eq!(
            funnel.graph(),
            plain.graph(),
            "scoring funnel diverged from the full-rescore path"
        );
        rows.push(IterRow {
            funnel_p4_ms: rf.phase_durations[3].as_secs_f64() * 1e3,
            plain_p4_ms: rp.phase_durations[3].as_secs_f64() * 1e3,
            funnel_sims: rf.sims_computed,
            plain_sims: rp.sims_computed,
            skipped: rf.sims_skipped,
            pruned: rf.sims_pruned,
            seeded: rf.accums_seeded,
        });
    }

    let mut table = TextTable::new(&[
        "iter",
        "funnel p4 ms",
        "plain p4 ms",
        "p4 speedup",
        "funnel sims",
        "plain sims",
        "sims saved",
        "skipped",
        "pruned",
    ]);
    for (i, r) in rows.iter().enumerate() {
        table.row(&[
            i.to_string(),
            format!("{:.1}", r.funnel_p4_ms),
            format!("{:.1}", r.plain_p4_ms),
            format!("{:.2}x", r.plain_p4_ms / r.funnel_p4_ms),
            r.funnel_sims.to_string(),
            r.plain_sims.to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - r.funnel_sims as f64 / r.plain_sims.max(1) as f64)
            ),
            r.skipped.to_string(),
            r.pruned.to_string(),
        ]);
    }
    eprintln!("{}", table.render());

    // Steady-state summary: the last three iterations (the regime a
    // long-running refinement loop lives in).
    let window = &rows[rows.len().saturating_sub(3)..];
    let steady_funnel_p4: f64 = window.iter().map(|r| r.funnel_p4_ms).sum::<f64>();
    let steady_plain_p4: f64 = window.iter().map(|r| r.plain_p4_ms).sum::<f64>();
    let steady_funnel_sims: u64 = window.iter().map(|r| r.funnel_sims).sum();
    let steady_plain_sims: u64 = window.iter().map(|r| r.plain_sims).sum();
    eprintln!(
        "steady state (last {} iters): p4 speedup {:.2}x, sims reduced {:.1}%",
        window.len(),
        steady_plain_p4 / steady_funnel_p4,
        100.0 * (1.0 - steady_funnel_sims as f64 / steady_plain_sims.max(1) as f64),
    );

    let rows_json: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                r#"{{"iter":{i},"funnel_p4_ms":{:.2},"plain_p4_ms":{:.2},"p4_speedup":{:.3},"funnel_sims":{},"plain_sims":{},"sims_skipped":{},"sims_pruned":{},"accums_seeded":{}}}"#,
                r.funnel_p4_ms,
                r.plain_p4_ms,
                r.plain_p4_ms / r.funnel_p4_ms,
                r.funnel_sims,
                r.plain_sims,
                r.skipped,
                r.pruned,
                r.seeded
            )
        })
        .collect();
    println!(
        r#"{{"bench":"scoring_funnel","users":{users},"k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"graphs_identical":true,"steady_p4_speedup":{:.3},"steady_sims_reduction":{:.3},"wall_s":{:.2},"results":[{}]}}"#,
        steady_plain_p4 / steady_funnel_p4,
        1.0 - steady_funnel_sims as f64 / steady_plain_sims.max(1) as f64,
        started.elapsed().as_secs_f64(),
        rows_json.join(",")
    );
}
