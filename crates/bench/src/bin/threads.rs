//! **Experiment E4 — future work: "multiple threads".**
//!
//! Sweeps the phase-4 worker thread count on a fixed workload and
//! reports phase-4 time, speedup over single-threaded, and similarity
//! throughput. Scoring is embarrassingly parallel within a resident
//! partition pair; the sequential I/O walls (load/unload) bound the
//! achievable speedup, so the curve flattens — Amdahl in miniature.
//!
//! Usage: `threads [--users N] [--k N] [--partitions N] [--max N] [--seed N]`

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::WorkingDir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 20_000);
    let k: usize = opt_or(&args, "k", 10);
    let m: usize = opt_or(&args, "partitions", 4);
    let max_threads: usize = opt_or(&args, "max", 8);
    let seed: u64 = opt_or(&args, "seed", 42);

    println!("E4 thread sweep: n={n}, K={k}, m={m}, seed={seed}\n");
    let mut table = TextTable::new(&[
        "threads",
        "phase-4 time",
        "speedup",
        "similarities/s",
        "result",
    ]);

    let mut baseline = None;
    let mut reference_graph = None;
    let mut threads = 1;
    while threads <= max_threads {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let config = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .threads(threads)
            .seed(seed)
            .build()
            .expect("config");
        let wd = WorkingDir::temp("threads").expect("workdir");
        let mut engine = KnnEngine::new(config, workload.profiles, wd).expect("engine");
        let report = engine.run_iteration().expect("iteration");
        let phase4 = report.phase_durations[3];
        let speedup = match baseline {
            None => {
                baseline = Some(phase4);
                1.0
            }
            Some(base) => base.as_secs_f64() / phase4.as_secs_f64(),
        };
        let identical = match &reference_graph {
            None => {
                reference_graph = Some(engine.graph().clone());
                "reference"
            }
            Some(g) if g == engine.graph() => "identical",
            Some(_) => "DIFFERENT (bug!)",
        };
        table.row(&[
            threads.to_string(),
            format!("{phase4:.3?}"),
            format!("{speedup:.2}x"),
            format!("{:.0}", report.scan_rate().unwrap_or(0.0)),
            identical.to_string(),
        ]);
        engine.into_working_dir().destroy().expect("cleanup");
        threads *= 2;
    }
    table.print();
    println!("\nexpected shape: near-linear speedup for small thread counts, flattening as");
    println!("partition load/unload I/O (sequential by design) dominates; results identical.");
}
