//! **Experiment R1 — durability overhead and recovery wall time.**
//!
//! Two questions about the crash-consistent commit protocol:
//!
//! 1. **What does crash-free durability cost?** Paired runs of the
//!    same workload on disk with the commit protocol off (the
//!    pre-protocol write path) and on (staged pre-image backups + a
//!    commit record per iteration). The claim: the protocol costs at
//!    most a few percent of iteration wall time, because backups copy
//!    only streams the iteration already rewrites.
//! 2. **How fast is recovery?** For a sweep of world sizes, crash an
//!    iteration halfway through its storage schedule and measure the
//!    storage-level `recover()` and the full engine resume, against
//!    the working-directory size on disk.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory) and a
//! human-readable table on stderr.
//!
//! Usage: `recovery [--users N] [--k N] [--partitions N] [--seed N]
//! [--iters N]`

use std::sync::Arc;
use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_graph::UserId;
use knn_sim::{ItemId, Measure, ProfileDelta, ProfileStore};
use knn_store::{DiskBackend, FaultBackend, FaultKind, FaultPlan, StorageBackend};

fn config(
    n: usize,
    k: usize,
    m: usize,
    seed: u64,
    measure: Measure,
    protocol: bool,
) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(measure)
        .seed(seed)
        .commit_protocol(protocol)
        .build()
        .expect("config")
}

fn update_for(iteration: u64, n: usize) -> ProfileDelta {
    ProfileDelta::set(
        UserId::new((iteration as u32 * 13) % n as u32),
        ItemId::new(20_000_000 + iteration as u32),
        2.5,
    )
}

/// Runs `iters` iterations (one queued update each, so the commit
/// path consumes log bytes every iteration) and returns the summed
/// iteration wall seconds.
fn timed_run(
    config: EngineConfig,
    profiles: ProfileStore,
    backend: Arc<dyn StorageBackend>,
    iters: u64,
    n: usize,
) -> f64 {
    let mut engine = KnnEngine::new_on(config, profiles, backend).expect("engine");
    let mut wall = 0.0;
    while engine.iteration() < iters {
        engine
            .queue_update(&update_for(engine.iteration(), n))
            .expect("queue");
        let started = Instant::now();
        engine.run_iteration().expect("iteration");
        wall += started.elapsed().as_secs_f64();
    }
    wall
}

fn dir_bytes(path: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(path) {
        for entry in entries.flatten() {
            let meta = entry.metadata().expect("metadata");
            if meta.is_dir() {
                total += dir_bytes(&entry.path());
            } else {
                total += meta.len();
            }
        }
    }
    total
}

struct RecoveryPoint {
    users: usize,
    workdir_bytes: u64,
    recover_ms: f64,
    resume_ms: f64,
    rolled_back: bool,
    restored: u64,
}

/// Builds a world, crashes an extra iteration halfway through its
/// storage schedule, and times recovery on the survived bytes.
fn crash_and_recover(users: usize, k: usize, m: usize, seed: u64, iters: u64) -> RecoveryPoint {
    let workload = WorkloadConfig::recommender().build(users, seed);
    let cfg = config(users, k, m, seed, workload.measure, true);

    let disk = DiskBackend::temp("bench_recovery").expect("disk backend");
    let wd = disk.working_dir().expect("workdir").clone();
    let fault = Arc::new(FaultBackend::new(Arc::new(disk)));
    let mut engine = KnnEngine::new_on(
        cfg.clone(),
        workload.profiles,
        Arc::clone(&fault) as Arc<dyn StorageBackend>,
    )
    .expect("engine");
    while engine.iteration() < iters {
        engine
            .queue_update(&update_for(engine.iteration(), users))
            .expect("queue");
        engine.run_iteration().expect("iteration");
    }

    // Probe one iteration's armed-op count, then kill the next one
    // halfway through the same schedule.
    fault.set_plan(FaultPlan {
        fail_at: u64::MAX,
        kind: FaultKind::Crash,
        seed,
    });
    engine
        .queue_update(&update_for(iters, users))
        .expect("queue");
    fault.arm();
    engine.run_iteration().expect("probe iteration");
    fault.disarm();
    let ops_per_iteration = fault.ops_observed();

    fault.set_plan(FaultPlan {
        fail_at: ops_per_iteration / 2,
        kind: FaultKind::Crash,
        seed,
    });
    engine
        .queue_update(&update_for(iters + 1, users))
        .expect("queue");
    fault.arm();
    let killed = engine.run_iteration();
    fault.disarm();
    assert!(killed.is_err(), "the mid-schedule crash must fire");
    drop(engine);

    let survivor = Arc::clone(fault.inner());
    let workdir_bytes = dir_bytes(wd.root());

    let started = Instant::now();
    let report = knn_store::recover(survivor.as_ref()).expect("recover");
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let resumed = KnnEngine::resume_on(cfg, Arc::clone(&survivor)).expect("resume");
    let resume_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(resumed);
    wd.destroy().expect("cleanup");

    RecoveryPoint {
        users,
        workdir_bytes,
        recover_ms,
        resume_ms,
        rolled_back: report.rolled_back,
        restored: report.restored,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 16_000);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let iters: u64 = opt_or(&args, "iters", 3);

    eprintln!("R1 recovery: n={n}, K={k}, m={m}, seed={seed}, iters={iters}");
    let started = Instant::now();

    // Part 1: paired crash-free overhead, protocol off vs on.
    // Alternating repetitions with a min-fold squeeze out filesystem
    // cache and allocator noise; steady state is what the overhead
    // claim is about.
    let workload = WorkloadConfig::recommender().build(n, seed);
    let mut walls = [f64::INFINITY; 2];
    for rep in 0..3 {
        for (slot, protocol) in [(0, false), (1, true)] {
            let disk = DiskBackend::temp("bench_recovery_overhead").expect("disk backend");
            let wd = disk.working_dir().expect("workdir").clone();
            let wall = timed_run(
                config(n, k, m, seed, workload.measure, protocol),
                workload.profiles.clone(),
                Arc::new(disk),
                iters,
                n,
            );
            wd.destroy().expect("cleanup");
            if rep > 0 {
                // Rep 0 is warmup.
                walls[slot] = walls[slot].min(wall);
            }
        }
    }
    let [off_s, on_s] = walls;
    let overhead_pct = (on_s - off_s) / off_s * 100.0;

    let mut table = TextTable::new(&["mode", "iters", "wall s", "s/iter"]);
    table.row(&[
        "protocol-off".into(),
        iters.to_string(),
        format!("{off_s:.2}"),
        format!("{:.3}", off_s / iters as f64),
    ]);
    table.row(&[
        "protocol-on".into(),
        iters.to_string(),
        format!("{on_s:.2}"),
        format!("{:.3}", on_s / iters as f64),
    ]);
    eprintln!("{}", table.render());
    eprintln!("commit-protocol overhead: {overhead_pct:+.1}%");

    // Part 2: recovery wall time vs workdir size.
    let mut points = Vec::new();
    for users in [n / 4, n / 2, n] {
        points.push(crash_and_recover(users.max(64), k, m, seed, iters));
    }

    let mut table = TextTable::new(&[
        "users",
        "workdir MB",
        "recover ms",
        "resume ms",
        "rolled back",
        "restored",
    ]);
    let mut rows = Vec::new();
    for p in &points {
        table.row(&[
            p.users.to_string(),
            format!("{:.1}", p.workdir_bytes as f64 / 1e6),
            format!("{:.1}", p.recover_ms),
            format!("{:.1}", p.resume_ms),
            p.rolled_back.to_string(),
            p.restored.to_string(),
        ]);
        rows.push(format!(
            r#"{{"users":{},"workdir_bytes":{},"recover_ms":{:.2},"resume_ms":{:.2},"rolled_back":{},"restored":{}}}"#,
            p.users, p.workdir_bytes, p.recover_ms, p.resume_ms, p.rolled_back, p.restored
        ));
    }
    eprintln!("{}", table.render());

    println!(
        r#"{{"bench":"recovery","users":{n},"k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"wall_s":{:.2},"overhead":{{"protocol_off_s":{off_s:.3},"protocol_on_s":{on_s:.3},"overhead_pct":{overhead_pct:.2}}},"recovery":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
