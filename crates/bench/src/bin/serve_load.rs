//! **Experiment S3 — serving under closed-loop overload.**
//!
//! Drives mixed read/update load against a [`KnnService`] and a
//! [`ShardedKnnService`] with *bounded* admission: reader threads
//! hammer `neighbors` back-to-back while writer threads submit a
//! closed-loop update storm that deliberately outruns the refinement
//! loop. Reports read-latency percentiles (p50/p99/p999), saturation
//! throughput, and the overload accounting — rejected/shed/coalesced
//! updates and the peak pending depth, which must never exceed the
//! configured capacity.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory) and a
//! human-readable table on stderr.
//!
//! Usage: `serve_load [--users N] [--k N] [--partitions N] [--shards N]
//! [--seed N] [--millis N] [--threads LIST] [--writers N]
//! [--capacity N]` (LIST comma-separated reader counts, default `1,4`)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_graph::UserId;
use knn_serve::{
    spawn, spawn_sharded, AdmissionConfig, KnnService, RefineOptions, ServeError, ServiceStats,
    ShardedKnnService,
};
use knn_shard::ShardedEngine;
use knn_sim::{ItemId, ProfileDelta};

/// The slice of each service's API the load loop needs; lets one
/// driver measure both the single-process and the sharded front-end.
trait LoadTarget: Clone + Send + 'static {
    fn query(&self, user: UserId);
    fn submit(&self, delta: ProfileDelta) -> Result<(), ServeError>;
    fn stats(&self) -> ServiceStats;
}

impl LoadTarget for KnnService {
    fn query(&self, user: UserId) {
        std::hint::black_box(self.neighbors(user).expect("in-range user"));
    }
    fn submit(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.submit_update(delta)
    }
    fn stats(&self) -> ServiceStats {
        self.stats()
    }
}

impl LoadTarget for ShardedKnnService {
    fn query(&self, user: UserId) {
        std::hint::black_box(self.neighbors(user).expect("in-range user"));
    }
    fn submit(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.submit_update(delta)
    }
    fn stats(&self) -> ServiceStats {
        self.stats()
    }
}

struct Measurement {
    mode: &'static str,
    readers: usize,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    accepted: u64,
    rejected: u64,
    shed: u64,
    coalesced: u64,
    peak_pending: u64,
    breaker_open_ms: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Closed-loop mixed load for `window`: `readers` query threads timing
/// every call, `writers` update threads submitting as fast as
/// admission lets them (sleeping the `retry_after_hint` on rejection —
/// a well-behaved client). Returns latency percentiles over all reads
/// plus the service's own overload accounting.
fn measure<T: LoadTarget>(
    service: &T,
    mode: &'static str,
    readers: usize,
    writers: usize,
    window: Duration,
    n: usize,
    capacity: usize,
) -> Measurement {
    let before = service.stats();
    let stop = Arc::new(AtomicBool::new(false));
    let mut reader_handles = Vec::new();
    for reader in 0..readers {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        reader_handles.push(std::thread::spawn(move || {
            let mut state = 0x9E37_79B9u64.wrapping_mul(reader as u64 + 1) | 1;
            let mut latencies_us = Vec::with_capacity(1 << 16);
            while !stop.load(Ordering::Relaxed) {
                let user = UserId::new((lcg(&mut state) % n as u64) as u32);
                let started = Instant::now();
                service.query(user);
                latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
            }
            latencies_us
        }));
    }
    let mut writer_handles = Vec::new();
    for writer in 0..writers {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        writer_handles.push(std::thread::spawn(move || {
            let mut state = 0xC2B2_AE3Du64.wrapping_mul(writer as u64 + 1) | 1;
            let mut accepted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let user = UserId::new((lcg(&mut state) % n as u64) as u32);
                let item = ItemId::new(1_000 + (lcg(&mut state) % 512) as u32);
                let weight = 1.0 + (lcg(&mut state) % 16) as f32 * 0.25;
                match service.submit(ProfileDelta::set(user, item, weight)) {
                    Ok(()) => accepted += 1,
                    Err(ServeError::Overloaded { retry_after_hint }) => {
                        std::thread::sleep(retry_after_hint.min(Duration::from_millis(5)));
                    }
                    Err(other) => panic!("writer hit unexpected error: {other}"),
                }
            }
            accepted
        }));
    }

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<f64> = Vec::new();
    for handle in reader_handles {
        latencies.extend(handle.join().expect("reader"));
    }
    let accepted: u64 = writer_handles
        .into_iter()
        .map(|w| w.join().expect("writer"))
        .sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let after = service.stats();
    let peak_pending = after.peak_pending;
    assert!(
        peak_pending <= capacity as u64,
        "{mode}: pending depth {peak_pending} exceeded capacity {capacity}"
    );

    let queries = latencies.len() as u64;
    Measurement {
        mode,
        readers,
        queries,
        qps: queries as f64 / window.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        accepted,
        rejected: after.rejected - before.rejected,
        shed: after.shed - before.shed,
        coalesced: after.coalesced - before.coalesced,
        peak_pending,
        breaker_open_ms: after.breaker_open_ms,
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 4_000);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let shards: usize = opt_or(&args, "shards", 4);
    let seed: u64 = opt_or(&args, "seed", 42);
    let millis: u64 = opt_or(&args, "millis", 1_000);
    let writers: usize = opt_or(&args, "writers", 2);
    let capacity: usize = opt_or(&args, "capacity", 256);
    let thread_list: String = opt_or(&args, "threads", "1,4".to_string());
    let thread_counts: Vec<usize> = thread_list
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .expect("--threads takes comma-separated counts")
        })
        .collect();

    eprintln!(
        "S3 serve load: n={n}, K={k}, m={m}, shards={shards}, seed={seed}, \
         window={millis}ms, writers={writers}, capacity={capacity}"
    );

    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        admission: AdmissionConfig::bounded(capacity),
        ..RefineOptions::default()
    };
    let window = Duration::from_millis(millis);
    let started = Instant::now();
    let mut results: Vec<Measurement> = Vec::new();

    {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let config = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .seed(seed)
            .build()
            .expect("config");
        let engine = KnnEngine::in_memory(config, workload.profiles).expect("engine");
        let (service, refine) = spawn(engine, options.clone()).expect("spawn");
        for &t in &thread_counts {
            results.push(measure(&service, "single", t, writers, window, n, capacity));
        }
        refine.stop().expect("stop single");
    }

    {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let config = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .seed(seed)
            .build()
            .expect("config");
        let engine =
            ShardedEngine::in_memory(config, workload.profiles, shards).expect("sharded engine");
        let (service, refine) = spawn_sharded(engine, options).expect("spawn_sharded");
        for &t in &thread_counts {
            results.push(measure(
                &service, "sharded", t, writers, window, n, capacity,
            ));
        }
        refine.stop().expect("stop sharded");
    }

    let mut table = TextTable::new(&[
        "mode",
        "readers",
        "q/s",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "accepted",
        "rejected",
        "shed",
        "coalesced",
        "peak",
    ]);
    for r in &results {
        table.row(&[
            r.mode.to_string(),
            r.readers.to_string(),
            format!("{:.0}", r.qps),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            format!("{:.1}", r.p999_us),
            r.accepted.to_string(),
            r.rejected.to_string(),
            r.shed.to_string(),
            r.coalesced.to_string(),
            r.peak_pending.to_string(),
        ]);
    }
    eprintln!("{}", table.render());

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                r#"{{"mode":"{}","readers":{},"queries":{},"qps":{:.1},"p50_us":{:.1},"p99_us":{:.1},"p999_us":{:.1},"accepted":{},"rejected":{},"shed":{},"coalesced":{},"peak_pending":{},"breaker_open_ms":{},"cache_hits":{},"cache_misses":{}}}"#,
                r.mode,
                r.readers,
                r.queries,
                r.qps,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.accepted,
                r.rejected,
                r.shed,
                r.coalesced,
                r.peak_pending,
                r.breaker_open_ms,
                r.cache_hits,
                r.cache_misses
            )
        })
        .collect();
    println!(
        r#"{{"bench":"serve_load","users":{n},"k":{k},"partitions":{m},"shards":{shards},"seed":{seed},"window_ms":{millis},"writers":{writers},"capacity":{capacity},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
