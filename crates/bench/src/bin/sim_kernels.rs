//! **Experiment S4 — similarity-kernel microbench.**
//!
//! Times every built-in similarity measure over a fixed random pair
//! sample, on three paths:
//!
//! * `unprepared` — the classic `Similarity::score(&Profile, &Profile)`
//!   entry point (per-profile aggregates recomputed per pair);
//! * `prepared` — `Measure::score_prepared` over [`PreparedProfile`]s
//!   (aggregates hoisted to profile load, the phase-4 hot path);
//! * `bound` — the O(1) `Measure::upper_bound` ceiling that the
//!   phase-4 filter evaluates instead of a kernel when it can.
//!
//! Reports ns/pair per measure and the prepared-path speedup. Each
//! prepared/unprepared pair of columns scores the identical pair
//! sample, and the checksums of both paths are asserted equal — the
//! bench doubles as a bit-identity smoke test.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory,
//! committed as `BENCH_sim_kernels.json`) and a human-readable table
//! on stderr.
//!
//! Usage: `sim_kernels [--profiles N] [--pairs N] [--items N]
//! [--avg-len N] [--seed N]`

use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::{Measure, PreparedProfile, Profile, Similarity};

struct Row {
    measure: &'static str,
    unprepared_ns: f64,
    prepared_ns: f64,
    bound_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num_profiles: usize = opt_or(&args, "profiles", 2000);
    let num_pairs: usize = opt_or(&args, "pairs", 400_000);
    let avg_len: usize = opt_or(&args, "avg-len", 16);
    let seed: u64 = opt_or(&args, "seed", 42);

    eprintln!(
        "S4 sim kernels: profiles={num_profiles}, pairs={num_pairs}, avg_len={avg_len}, \
         seed={seed}"
    );

    // Clustered ratings: realistic overlap structure, mixed lengths.
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(num_profiles, seed)
            .with_clusters(8)
            .with_ratings(avg_len, avg_len / 3),
    );
    let profiles: Vec<Profile> = (0..num_profiles as u32)
        .map(|u| store.get(knn_graph::UserId::new(u)).clone())
        .collect();
    let prepared: Vec<PreparedProfile> = profiles
        .iter()
        .map(|p| PreparedProfile::new(p.clone()))
        .collect();

    // Deterministic pair sample (simple LCG; the pairs just need to
    // cover the profile set evenly).
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let pairs: Vec<(usize, usize)> = (0..num_pairs)
        .map(|_| (next() % num_profiles, next() % num_profiles))
        .collect();

    let started = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    for measure in Measure::ALL {
        // Unprepared path.
        let t0 = Instant::now();
        let mut sum_unprepared = 0.0f64;
        for &(a, b) in &pairs {
            sum_unprepared += measure.score(&profiles[a], &profiles[b]) as f64;
        }
        let unprepared_ns = t0.elapsed().as_nanos() as f64 / num_pairs as f64;

        // Prepared path.
        let t0 = Instant::now();
        let mut sum_prepared = 0.0f64;
        for &(a, b) in &pairs {
            sum_prepared += measure.score_prepared(&prepared[a], &prepared[b]) as f64;
        }
        let prepared_ns = t0.elapsed().as_nanos() as f64 / num_pairs as f64;

        // The determinism contract, checked in anger on the full
        // sample: both paths sum to the identical value.
        assert_eq!(
            sum_unprepared.to_bits(),
            sum_prepared.to_bits(),
            "{measure}: prepared path diverged from Similarity::score"
        );

        // Bound evaluation (the work a pruned pair costs instead).
        let t0 = Instant::now();
        let mut bound_acc = 0.0f64;
        for &(a, b) in &pairs {
            bound_acc += measure.upper_bound(&prepared[a], &prepared[b]) as f64;
        }
        let bound_ns = t0.elapsed().as_nanos() as f64 / num_pairs as f64;
        std::hint::black_box(bound_acc);

        rows.push(Row {
            measure: measure.name(),
            unprepared_ns,
            prepared_ns,
            bound_ns,
        });
    }

    let mut table = TextTable::new(&[
        "measure",
        "unprepared ns/pair",
        "prepared ns/pair",
        "speedup",
        "bound ns/pair",
    ]);
    for r in &rows {
        table.row(&[
            r.measure.to_string(),
            format!("{:.1}", r.unprepared_ns),
            format!("{:.1}", r.prepared_ns),
            format!("{:.2}x", r.unprepared_ns / r.prepared_ns),
            format!("{:.1}", r.bound_ns),
        ]);
    }
    eprintln!("{}", table.render());

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"measure":"{}","unprepared_ns_per_pair":{:.2},"prepared_ns_per_pair":{:.2},"speedup":{:.3},"bound_ns_per_pair":{:.2}}}"#,
                r.measure,
                r.unprepared_ns,
                r.prepared_ns,
                r.unprepared_ns / r.prepared_ns,
                r.bound_ns
            )
        })
        .collect();
    println!(
        r#"{{"bench":"sim_kernels","profiles":{num_profiles},"pairs":{num_pairs},"avg_len":{avg_len},"seed":{seed},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows_json.join(",")
    );
}
