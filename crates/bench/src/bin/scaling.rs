//! **Experiment E1 — future work: "different graph sizes".**
//!
//! Sweeps the user count and compares, per size: the out-of-core
//! engine (time per iteration, partition ops, bytes moved), in-memory
//! NN-Descent (total time), and brute force (total time, the exact
//! baseline). Demonstrates the engine's near-linear scaling in `n`
//! while brute force grows quadratically.
//!
//! Usage: `scaling [--sizes a,b,c] [--k N] [--iters N] [--seed N] [--threads N]`

use std::time::Instant;

use knn_baseline::{brute_force_knn, NnDescent, NnDescentConfig};
use knn_bench::{fmt_bytes, opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::WorkingDir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: String = opt_or(&args, "sizes", "1000,2000,5000,10000".to_string());
    let k: usize = opt_or(&args, "k", 10);
    let iters: usize = opt_or(&args, "iters", 3);
    let seed: u64 = opt_or(&args, "seed", 42);
    let threads: usize = opt_or(&args, "threads", 4);
    let sizes: Vec<usize> = sizes
        .split(',')
        .map(|s| s.trim().parse().expect("size list"))
        .collect();

    println!("E1 scaling sweep: K={k}, {iters} engine iterations per size, seed={seed}\n");
    let mut table = TextTable::new(&[
        "n",
        "engine/iter",
        "part ops",
        "bytes/iter",
        "nn-descent",
        "brute force",
    ]);

    for &n in &sizes {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let m = (n / 1250).clamp(4, 64);

        // Out-of-core engine.
        let config = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .threads(threads)
            .seed(seed)
            .build()
            .expect("config");
        let wd = WorkingDir::temp("scaling").expect("workdir");
        let mut engine = KnnEngine::new(config, workload.profiles.clone(), wd).expect("engine");
        let t0 = Instant::now();
        for _ in 0..iters {
            engine.run_iteration().expect("iteration");
        }
        let engine_per_iter = t0.elapsed() / iters as u32;
        let ops: u64 = engine
            .reports()
            .iter()
            .map(|r| r.cache.total_ops())
            .sum::<u64>()
            / iters as u64;
        let bytes: u64 = engine
            .reports()
            .iter()
            .map(|r| r.total_bytes())
            .sum::<u64>()
            / iters as u64;
        engine.into_working_dir().destroy().expect("cleanup");

        // NN-Descent (in-memory).
        let t0 = Instant::now();
        let nnd = NnDescent::new(
            &workload.profiles,
            &workload.measure,
            NnDescentConfig::new(k, seed),
        )
        .run();
        let nnd_time = t0.elapsed();

        // Brute force (exact).
        let t0 = Instant::now();
        let _truth = brute_force_knn(&workload.profiles, &workload.measure, k, threads);
        let brute_time = t0.elapsed();

        table.row(&[
            n.to_string(),
            format!("{engine_per_iter:.2?}"),
            ops.to_string(),
            fmt_bytes(bytes),
            format!("{nnd_time:.2?} ({} it)", nnd.iterations),
            format!("{brute_time:.2?}"),
        ]);
    }
    table.print();
    println!("\nexpected shape: engine and NN-Descent grow ~linearly in n, brute force ~n²;");
    println!("the engine trades time for an O(2 partitions) memory footprint.");
}
