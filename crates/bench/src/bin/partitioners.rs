//! **Experiment E8 — the phase-1 partitioning objective ablation.**
//!
//! The paper partitions `G(t)` to minimize `Σ (N_in + N_out)` — the
//! unique-external-vertex count. This experiment quantifies what each
//! partitioner buys: the objective value on the Table-1 replicas and,
//! end-to-end, the downstream effect on tuple-bucket spread and
//! partition operations inside the engine.
//!
//! Usage: `partitioners [--partitions N] [--seed N] [--users N]`

use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::partition::{objective, PartitionerKind};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::{Table1Dataset, WorkloadConfig};
use knn_graph::DiGraph;
use knn_store::WorkingDir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = opt_or(&args, "partitions", 16);
    let seed: u64 = opt_or(&args, "seed", 42);
    let n_engine: usize = opt_or(&args, "users", 5000);

    println!("E8 partitioner ablation (m={m}, seed={seed})");
    println!("\npart 1: objective Σ(N_in + N_out) on Table-1 replicas (lower is better)\n");
    let mut t = TextTable::new(&[
        "dataset",
        "contiguous",
        "random",
        "greedy",
        "refined",
        "greedy time",
    ]);
    for ds in [
        Table1Dataset::GeneralRelativity,
        Table1Dataset::WikiVote,
        Table1Dataset::Gnutella,
    ] {
        let row = ds.paper_row();
        let g = DiGraph::from_undirected_edges(row.nodes, ds.generate(seed)).expect("graph");
        let mut cells = vec![row.label.to_string()];
        let mut greedy_time = String::new();
        for kind in PartitionerKind::ALL {
            // The cluster packer is profile-driven — the engine binds it
            // to a clustering pre-pass, so there is no graph-only
            // instantiation to ablate here. Part 2 covers it end to end.
            if kind == PartitionerKind::Cluster {
                continue;
            }
            let t0 = Instant::now();
            let p = kind.instantiate(seed).partition(&g, m).expect("partition");
            let elapsed = t0.elapsed();
            if kind == PartitionerKind::Greedy {
                greedy_time = format!("{elapsed:.2?}");
            }
            cells.push(objective::replication_cost(&g, &p).to_string());
        }
        cells.push(greedy_time);
        t.row(&cells);
    }
    t.print();

    println!("\npart 2: end-to-end engine effect (n={n_engine}, one iteration)\n");
    let mut t = TextTable::new(&[
        "partitioner",
        "objective",
        "pi pairs",
        "part ops",
        "iter time",
    ]);
    for kind in PartitionerKind::ALL {
        let workload = WorkloadConfig::recommender().build(n_engine, seed);
        let config = EngineConfig::builder(n_engine)
            .k(10)
            .num_partitions(m)
            .partitioner(kind)
            .measure(workload.measure)
            .seed(seed)
            .build()
            .expect("config");
        let wd = WorkingDir::temp("partitioners").expect("workdir");
        let mut engine = KnnEngine::new(config, workload.profiles, wd).expect("engine");
        let t0 = Instant::now();
        let report = engine.run_iteration().expect("iteration");
        let elapsed = t0.elapsed();
        t.row(&[
            kind.to_string(),
            report.replication_cost.to_string(),
            report.schedule_len.to_string(),
            report.cache.total_ops().to_string(),
            format!("{elapsed:.2?}"),
        ]);
        engine.into_working_dir().destroy().expect("cleanup");
    }
    t.print();
    println!("\nexpected shape: greedy/refined cut the objective well below contiguous and");
    println!("random; with m² ≪ tuple spread the op counts move less than the objective —");
    println!("the win is in bytes touched per load, not the schedule length.");
}
