//! **Experiment S6 — sharded iteration: exchange volume and overhead.**
//!
//! Runs the same seeded workload through a 1-shard and an N-shard
//! [`ShardedEngine`] **in one process**, in lockstep: after every
//! iteration the two graphs are asserted equal (the shard-count
//! determinism contract, checked in anger), the summed I/O meters are
//! asserted equal at the end, and the JSON records what sharding
//! *adds* — the per-iteration cross-shard exchange traffic (payloads,
//! tuples, encoded bytes, spill-run payloads) that the fabric moves
//! and a single process never pays.
//!
//! Runs on per-shard `MemBackend`s so the numbers isolate the
//! exchange/merge overhead of the shard layer rather than disk
//! latency.
//!
//! Emits one JSON document on stdout (committed as
//! `BENCH_shards.json`) and a human-readable table on stderr.
//!
//! Usage: `sharded_iteration [--sizes LIST] [--shards LIST] [--k N]
//! [--partitions N] [--threads N] [--seed N] [--iters N]`
//! (defaults: sizes `2000,10000`, shards `4`, the 1-shard baseline is
//! always run).

use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::EngineConfig;
use knn_datasets::WorkloadConfig;
use knn_shard::ShardedEngine;

struct Run {
    users: usize,
    shards: usize,
    iter_ms: Vec<f64>,
    exchange_payloads: Vec<u64>,
    exchange_spill_payloads: Vec<u64>,
    exchange_tuples: Vec<u64>,
    exchange_bytes: Vec<u64>,
    tuples_unique: Vec<u64>,
    edges: usize,
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn parse_list(arg: &str, what: &str) -> Vec<usize> {
    arg.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--{what} takes comma-separated counts"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = parse_list(&opt_or(&args, "sizes", "2000,10000".to_string()), "sizes");
    let mut shard_counts = parse_list(&opt_or(&args, "shards", "4".to_string()), "shards");
    // The 1-shard engine is the paired baseline every other count is
    // checked and measured against.
    if shard_counts.first() != Some(&1) {
        shard_counts.insert(0, 1);
    }
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let threads: usize = opt_or(&args, "threads", 2);
    let seed: u64 = opt_or(&args, "seed", 42);
    let iters: usize = opt_or(&args, "iters", 4);

    eprintln!(
        "S6 sharded iteration: sizes={sizes:?}, shards={shard_counts:?}, K={k}, m={m}, \
         threads={threads}, seed={seed}, iters={iters}"
    );

    let started = Instant::now();
    let mut runs: Vec<Run> = Vec::new();
    for &n in &sizes {
        let workload = WorkloadConfig::recommender().build(n, seed);
        let config = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .threads(threads)
            .seed(seed)
            .build()
            .expect("config");

        // All shard counts advance in lockstep so every iteration's
        // graph (and, at the end, the summed I/O meters) can be
        // compared pairwise against the 1-shard baseline.
        let mut engines: Vec<ShardedEngine> = shard_counts
            .iter()
            .map(|&shards| {
                ShardedEngine::in_memory(config.clone(), workload.profiles.clone(), shards)
                    .expect("engine")
            })
            .collect();
        let mut per_engine: Vec<Run> = shard_counts
            .iter()
            .map(|&shards| Run {
                users: n,
                shards,
                iter_ms: Vec::with_capacity(iters),
                exchange_payloads: Vec::with_capacity(iters),
                exchange_spill_payloads: Vec::with_capacity(iters),
                exchange_tuples: Vec::with_capacity(iters),
                exchange_bytes: Vec::with_capacity(iters),
                tuples_unique: Vec::with_capacity(iters),
                edges: 0,
            })
            .collect();

        for _ in 0..iters {
            for (engine, run) in engines.iter_mut().zip(&mut per_engine) {
                let t0 = Instant::now();
                let report = engine.run_iteration().expect("iteration");
                run.iter_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                run.exchange_payloads.push(report.exchange.payloads);
                run.exchange_spill_payloads
                    .push(report.exchange.spill_payloads);
                run.exchange_tuples.push(report.exchange.tuples);
                run.exchange_bytes.push(report.exchange.bytes);
                run.tuples_unique.push(report.report.tuples.unique);
            }
            for engine in engines.iter().skip(1) {
                assert_eq!(
                    engines[0].graph(),
                    engine.graph(),
                    "shards={} diverged from the 1-shard baseline",
                    engine.num_shards()
                );
            }
        }
        for engine in engines.iter().skip(1) {
            assert_eq!(
                engines[0].io_snapshot(),
                engine.io_snapshot(),
                "summed IoStats of shards={} diverged",
                engine.num_shards()
            );
        }
        for (engine, mut run) in engines.into_iter().zip(per_engine) {
            run.edges = engine.graph().num_edges();
            runs.push(run);
        }
    }

    let mut table = TextTable::new(&[
        "users",
        "shards",
        "mean iter ms",
        "vs 1-shard",
        "xchg payloads/iter",
        "xchg tuples/iter",
        "xchg KiB/iter",
    ]);
    for group in runs.chunks(shard_counts.len()) {
        let base = mean(&group[0].iter_ms);
        for r in group {
            let per_iter = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64;
            table.row(&[
                r.users.to_string(),
                r.shards.to_string(),
                format!("{:.1}", mean(&r.iter_ms)),
                format!("{:.2}x", mean(&r.iter_ms) / base),
                format!("{:.0}", per_iter(&r.exchange_payloads)),
                format!("{:.0}", per_iter(&r.exchange_tuples)),
                format!("{:.1}", per_iter(&r.exchange_bytes) / 1024.0),
            ]);
        }
    }
    eprintln!("{}", table.render());

    let rows: Vec<String> = runs
        .chunks(shard_counts.len())
        .flat_map(|group| {
            let base = mean(&group[0].iter_ms);
            group.iter().map(move |r| {
                let fmt_ms = |xs: &[f64]| {
                    xs.iter()
                        .map(|ms| format!("{ms:.2}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    r#"{{"users":{},"shards":{},"iter_ms":[{}],"mean_iter_ms":{:.2},"overhead_vs_1shard":{:.3},"exchange_payloads":[{}],"exchange_spill_payloads":[{}],"exchange_tuples":[{}],"exchange_bytes":[{}],"tuples_unique":[{}],"graphs_equal":true,"edges":{}}}"#,
                    r.users,
                    r.shards,
                    fmt_ms(&r.iter_ms),
                    mean(&r.iter_ms),
                    mean(&r.iter_ms) / base,
                    join_u64(&r.exchange_payloads),
                    join_u64(&r.exchange_spill_payloads),
                    join_u64(&r.exchange_tuples),
                    join_u64(&r.exchange_bytes),
                    join_u64(&r.tuples_unique),
                    r.edges
                )
            })
        })
        .collect();
    println!(
        r#"{{"bench":"sharded_iteration","backend":"mem","k":{k},"partitions":{m},"threads":{threads},"seed":{seed},"iters":{iters},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
