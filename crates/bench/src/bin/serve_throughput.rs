//! **Experiment S1 — online serving throughput.**
//!
//! Measures `KnnService` query throughput with 1, 4, and 8 reader
//! threads while the refinement loop keeps iterating underneath — the
//! serve layer's core claim is that readers never block on refinement,
//! so throughput should scale with reader count instead of collapsing
//! when an iteration publishes.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory) and a
//! human-readable table on stderr.
//!
//! Usage: `serve_throughput [--users N] [--k N] [--partitions N]
//! [--seed N] [--millis N] [--threads LIST]` (LIST comma-separated,
//! default `1,4,8`)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_graph::UserId;
use knn_serve::{spawn, KnnService, RefineOptions};
use knn_store::WorkingDir;

struct Measurement {
    threads: usize,
    queries: u64,
    qps: f64,
    epochs_crossed: u64,
}

/// Hammers `neighbors` from `threads` readers for `window`, returning
/// total queries answered and how many snapshot swaps happened inside
/// the window (proof refinement really ran underneath).
fn measure(service: &KnnService, threads: usize, window: Duration, n: usize) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let epoch_before = service.snapshot().epoch();
    let mut readers = Vec::new();
    for reader in 0..threads {
        let service = service.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            // Cheap deterministic id stream (LCG), distinct per reader.
            let mut state = 0x9E37_79B9u64.wrapping_mul(reader as u64 + 1) | 1;
            let mut queries = 0u64;
            while !stop.load(Ordering::Relaxed) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let user = UserId::new(((state >> 33) % n as u64) as u32);
                let list = service.neighbors(user).expect("in-range user");
                std::hint::black_box(list);
                queries += 1;
            }
            queries
        }));
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let queries: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    let epochs_crossed = service.snapshot().epoch() - epoch_before;
    Measurement {
        threads,
        queries,
        qps: queries as f64 / window.as_secs_f64(),
        epochs_crossed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 4_000);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let millis: u64 = opt_or(&args, "millis", 1_000);
    let thread_list: String = opt_or(&args, "threads", "1,4,8".to_string());
    let thread_counts: Vec<usize> = thread_list
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .expect("--threads takes comma-separated counts")
        })
        .collect();

    eprintln!("S1 serve throughput: n={n}, K={k}, m={m}, seed={seed}, window={millis}ms");

    let workload = WorkloadConfig::recommender().build(n, seed);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("serve_throughput").expect("workdir");
    let engine = KnnEngine::new(config, workload.profiles, wd).expect("engine");
    // Refine forever: the whole point is to measure with swaps live.
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn service");

    let window = Duration::from_millis(millis);
    let started = Instant::now();
    let results: Vec<Measurement> = thread_counts
        .iter()
        .map(|&t| measure(&service, t, window, n))
        .collect();

    let mut table = TextTable::new(&["readers", "queries", "queries/s", "swaps in window"]);
    for r in &results {
        table.row(&[
            r.threads.to_string(),
            r.queries.to_string(),
            format!("{:.0}", r.qps),
            r.epochs_crossed.to_string(),
        ]);
    }
    eprintln!("{}", table.render());

    // The BENCH-trajectory JSON document.
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                r#"{{"readers":{},"queries":{},"qps":{:.1},"epochs_crossed":{}}}"#,
                r.threads, r.queries, r.qps, r.epochs_crossed
            )
        })
        .collect();
    println!(
        r#"{{"bench":"serve_throughput","users":{n},"k":{k},"partitions":{m},"seed":{seed},"window_ms":{millis},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );

    let engine = refine.stop().expect("stop");
    engine.into_working_dir().destroy().expect("cleanup");
}
