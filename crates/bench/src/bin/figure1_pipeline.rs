//! **Experiment F1 — the paper's Figure 1.**
//!
//! The figure shows the five-phase pipeline: input `G(t)`, 1) KNN
//! graph partitioning, 2) hash table, 3) PI graph, 4) KNN computation,
//! 5) updating profiles. This binary runs the real pipeline on a
//! recommender workload and narrates each phase with its measured
//! inputs, outputs, time, and I/O — including the per-phase disk
//! throughput (future-work item E5).
//!
//! Usage: `figure1_pipeline [--users N] [--k N] [--partitions N] [--iters N] [--seed N]`

use knn_bench::{fmt_bytes, opt_or, TextTable};
use knn_core::metrics::PHASE_NAMES;
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_sim::{ItemId, ProfileDelta};
use knn_store::WorkingDir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let users: usize = opt_or(&args, "users", 20_000);
    let k: usize = opt_or(&args, "k", 10);
    let partitions: usize = opt_or(&args, "partitions", 32);
    let iters: usize = opt_or(&args, "iters", 2);
    let seed: u64 = opt_or(&args, "seed", 42);

    println!("Figure 1 pipeline: n={users}, K={k}, m={partitions}, seed={seed}");
    let workload = WorkloadConfig::recommender().build(users, seed);
    println!(
        "workload: {}, measure: {}\n",
        workload.name, workload.measure
    );

    let config = EngineConfig::builder(users)
        .k(k)
        .num_partitions(partitions)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("valid config");
    let wd = WorkingDir::temp("figure1").expect("temp working dir");
    let mut engine = KnnEngine::new(config, workload.profiles, wd).expect("engine construction");

    for iter in 0..iters {
        // Queue a few mid-iteration profile updates so phase 5 has
        // something to do (they become visible next iteration).
        for u in 0..5u32 {
            engine
                .queue_update(&ProfileDelta::set(
                    knn_graph::UserId::new(u),
                    ItemId::new(1_000_000 + iter as u32),
                    3.0,
                ))
                .expect("valid update");
        }
        let report = engine.run_iteration().expect("iteration");
        println!("=== iteration {iter}: G({iter}) -> G({})", iter + 1);
        let mut t = TextTable::new(&["phase", "time", "read", "written", "throughput"]);
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let io = report.phase_io[i];
            let secs = report.phase_durations[i].as_secs_f64();
            let throughput = if secs > 0.0 {
                format!("{}/s", fmt_bytes((io.bytes_total() as f64 / secs) as u64))
            } else {
                "-".to_string()
            };
            t.row(&[
                format!("{}. {name}", i + 1),
                format!("{:.3?}", report.phase_durations[i]),
                fmt_bytes(io.bytes_read),
                fmt_bytes(io.bytes_written),
                throughput,
            ]);
        }
        t.print();
        println!(
            "tuples: {} offered -> {} unique ({} duplicates removed by the hash table)",
            report.tuples.offered, report.tuples.unique, report.tuples.duplicates
        );
        println!(
            "PI graph: {} pairs scheduled; {} loads + {} unloads (predicted {})",
            report.schedule_len,
            report.cache.loads,
            report.cache.unloads,
            report.predicted.total_ops()
        );
        println!(
            "similarities: {}; partition objective: {}; updates applied: {}; edges changed: {:.1}%",
            report.sims_computed,
            report.replication_cost,
            report.updates_applied,
            report.changed_fraction * 100.0
        );
        if let Some(rate) = report.scan_rate() {
            println!("phase-4 scan rate: {rate:.0} similarities/s");
        }
        println!();
    }

    let disk = engine
        .working_dir()
        .expect("disk-backed")
        .disk_usage()
        .expect("disk usage");
    println!("on-disk working set: {}", fmt_bytes(disk));
    println!("total engine I/O:   {}", engine.io_snapshot());
    engine.into_working_dir().destroy().expect("cleanup");
}
