//! **Experiment S6 — the phase-1/2 tuple-pipeline overhaul, paired.**
//!
//! Runs two engines over the identical seeded workload in lockstep:
//! one on the columnar radix tuple pipeline (the default — SoA
//! staging, sort-time dedup, varint-delta spill codec, loser-tree
//! streaming merge) and one forced down the legacy row pipeline
//! (per-offer hash dedup, comparison sort, fixed-width 8 B/pair spill
//! runs, load-everything merge). Because the two alternate iteration
//! by iteration inside one process, machine-level drift hits both
//! equally — the per-iteration ratios isolate the data-plane effect.
//!
//! After every iteration the two graphs are asserted **identical**:
//! the pipelines differ only in representation, never in output.
//!
//! A small spill threshold keeps both pipelines on the out-of-core
//! path the paper's memory constraint forces — with everything staged
//! in RAM there would be no spill traffic to compare. The headline
//! numbers are the phase-2 wall-clock ratio and the spilled-byte
//! ratio (the varint-delta codec's compression of overflow traffic).
//!
//! Emits one JSON document on stdout (committed as
//! `BENCH_tuple_pipeline.json`) and a table on stderr.
//!
//! `--pipeline columnar|legacy` runs a single unpaired engine instead
//! — the mode CI's bounded-memory job uses together with
//! `--tuple-memory` and `--backend disk` to pin peak RSS under
//! `/usr/bin/time -v`.
//!
//! Usage: `tuple_pipeline [--users N] [--iters N] [--k N]
//! [--partitions N] [--seed N] [--spill N] [--tuple-memory BYTES]
//! [--backend mem|disk] [--pipeline paired|columnar|legacy]`

use std::sync::Arc;
use std::time::Instant;

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_store::{DiskBackend, MemBackend, StorageBackend, WorkingDir};

struct IterRow {
    col_p1_ms: f64,
    col_p2_ms: f64,
    col_spilled: u64,
    col_runs: u64,
    col_merges: u64,
    leg_p1_ms: f64,
    leg_p2_ms: f64,
    leg_spilled: u64,
    tuples_unique: u64,
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let users: usize = opt_or(&args, "users", 50_000);
    let iters: usize = opt_or(&args, "iters", 6);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let spill: usize = opt_or(&args, "spill", 8192);
    let tuple_memory: usize = opt_or(&args, "tuple-memory", 0); // 0 = no budget
    let backend_kind: String = opt_or(&args, "backend", "mem".to_string());
    let pipeline: String = opt_or(&args, "pipeline", "paired".to_string());

    eprintln!(
        "S6 tuple pipeline: users={users}, iters={iters}, K={k}, m={m}, seed={seed}, \
         spill={spill}, tuple_memory={tuple_memory}, backend={backend_kind}, mode={pipeline}"
    );
    let workload = WorkloadConfig::recommender().build(users, seed);
    let mut workdirs: Vec<WorkingDir> = Vec::new();
    let mut make_backend = || -> Arc<dyn StorageBackend> {
        if backend_kind == "disk" {
            let disk = DiskBackend::temp("tuple_pipeline").expect("disk backend");
            workdirs.push(disk.working_dir().expect("workdir").clone());
            Arc::new(disk)
        } else {
            Arc::new(MemBackend::new())
        }
    };
    let mut build = |legacy: bool| {
        let config = EngineConfig::builder(users)
            .k(k)
            .num_partitions(m)
            .measure(workload.measure)
            .threads(1)
            .spill_threshold(spill)
            .tuple_table_memory((!legacy && tuple_memory > 0).then_some(tuple_memory))
            .legacy_tuple_pipeline(legacy)
            .seed(seed)
            .build()
            .expect("config");
        KnnEngine::new_on(config, workload.profiles.clone(), make_backend()).expect("engine")
    };

    let started = Instant::now();
    let json = match pipeline.as_str() {
        "paired" => {
            let mut columnar = build(false);
            let mut legacy = build(true);
            let mut rows: Vec<IterRow> = Vec::new();
            for _ in 0..iters {
                let rc = columnar.run_iteration().expect("columnar iteration");
                let rl = legacy.run_iteration().expect("legacy iteration");
                // The exactness contract: the pipelines never diverge.
                assert_eq!(
                    columnar.graph(),
                    legacy.graph(),
                    "columnar pipeline diverged from the legacy pipeline"
                );
                assert_eq!(rc.tuples.unique, rl.tuples.unique, "dedup disagreement");
                rows.push(IterRow {
                    col_p1_ms: rc.phase_durations[0].as_secs_f64() * 1e3,
                    col_p2_ms: rc.phase_durations[1].as_secs_f64() * 1e3,
                    col_spilled: rc.bytes_spilled,
                    col_runs: rc.spill_runs,
                    col_merges: rc.merge_passes,
                    leg_p1_ms: rl.phase_durations[0].as_secs_f64() * 1e3,
                    leg_p2_ms: rl.phase_durations[1].as_secs_f64() * 1e3,
                    leg_spilled: rl.bytes_spilled,
                    tuples_unique: rc.tuples.unique,
                });
            }

            let mut table = TextTable::new(&[
                "iter",
                "col p2 ms",
                "leg p2 ms",
                "p2 speedup",
                "col spilled B",
                "leg spilled B",
                "spill ratio",
                "unique tuples",
            ]);
            for (i, r) in rows.iter().enumerate() {
                table.row(&[
                    i.to_string(),
                    format!("{:.1}", r.col_p2_ms),
                    format!("{:.1}", r.leg_p2_ms),
                    format!("{:.2}x", r.leg_p2_ms / r.col_p2_ms),
                    r.col_spilled.to_string(),
                    r.leg_spilled.to_string(),
                    format!("{:.2}", r.col_spilled as f64 / r.leg_spilled.max(1) as f64),
                    r.tuples_unique.to_string(),
                ]);
            }
            eprintln!("{}", table.render());

            let p2_speedup =
                mean(rows.iter().map(|r| r.leg_p2_ms)) / mean(rows.iter().map(|r| r.col_p2_ms));
            let p1_speedup =
                mean(rows.iter().map(|r| r.leg_p1_ms)) / mean(rows.iter().map(|r| r.col_p1_ms));
            let col_spilled: u64 = rows.iter().map(|r| r.col_spilled).sum();
            let leg_spilled: u64 = rows.iter().map(|r| r.leg_spilled).sum();
            let spill_reduction = 1.0 - col_spilled as f64 / leg_spilled.max(1) as f64;
            eprintln!(
                "mean p2 speedup {p2_speedup:.2}x, p1 speedup {p1_speedup:.2}x, \
                 spilled bytes reduced {:.1}% ({col_spilled} vs {leg_spilled})",
                spill_reduction * 100.0
            );

            let rows_json: Vec<String> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    format!(
                        r#"{{"iter":{i},"columnar_p1_ms":{:.2},"columnar_p2_ms":{:.2},"legacy_p1_ms":{:.2},"legacy_p2_ms":{:.2},"p2_speedup":{:.3},"columnar_spilled_bytes":{},"legacy_spilled_bytes":{},"spill_runs":{},"merge_passes":{},"tuples_unique":{}}}"#,
                        r.col_p1_ms,
                        r.col_p2_ms,
                        r.leg_p1_ms,
                        r.leg_p2_ms,
                        r.leg_p2_ms / r.col_p2_ms,
                        r.col_spilled,
                        r.leg_spilled,
                        r.col_runs,
                        r.col_merges,
                        r.tuples_unique
                    )
                })
                .collect();
            format!(
                r#"{{"bench":"tuple_pipeline","mode":"paired","backend":"{backend_kind}","users":{users},"k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"spill_threshold":{spill},"graphs_identical":true,"p2_speedup":{p2_speedup:.3},"p1_speedup":{p1_speedup:.3},"spilled_bytes_columnar":{col_spilled},"spilled_bytes_legacy":{leg_spilled},"spilled_reduction":{spill_reduction:.3},"wall_s":{:.2},"results":[{}]}}"#,
                started.elapsed().as_secs_f64(),
                rows_json.join(",")
            )
        }
        mode @ ("columnar" | "legacy") => {
            // Single unpaired engine: the bounded-memory / smoke mode.
            let mut engine = build(mode == "legacy");
            let mut rows_json = Vec::new();
            for i in 0..iters {
                let r = engine.run_iteration().expect("iteration");
                eprintln!(
                    "iter {i}: p1 {:.1} ms, p2 {:.1} ms, spilled {} B in {} runs, {} merges",
                    r.phase_durations[0].as_secs_f64() * 1e3,
                    r.phase_durations[1].as_secs_f64() * 1e3,
                    r.bytes_spilled,
                    r.spill_runs,
                    r.merge_passes
                );
                rows_json.push(format!(
                    r#"{{"iter":{i},"p1_ms":{:.2},"p2_ms":{:.2},"spilled_bytes":{},"spill_runs":{},"merge_passes":{},"tuples_unique":{}}}"#,
                    r.phase_durations[0].as_secs_f64() * 1e3,
                    r.phase_durations[1].as_secs_f64() * 1e3,
                    r.bytes_spilled,
                    r.spill_runs,
                    r.merge_passes,
                    r.tuples.unique
                ));
            }
            format!(
                r#"{{"bench":"tuple_pipeline","mode":"{mode}","backend":"{backend_kind}","users":{users},"k":{k},"partitions":{m},"seed":{seed},"iters":{iters},"spill_threshold":{spill},"tuple_table_memory":{tuple_memory},"wall_s":{:.2},"results":[{}]}}"#,
                started.elapsed().as_secs_f64(),
                rows_json.join(",")
            )
        }
        other => panic!("--pipeline takes paired|columnar|legacy, got {other}"),
    };
    println!("{json}");
    for wd in workdirs {
        wd.destroy().expect("cleanup");
    }
}
