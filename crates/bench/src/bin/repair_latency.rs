//! **Experiment S2 — ingest-to-visibility latency.**
//!
//! Measures how long an accepted profile update takes to become
//! visible in a served snapshot, under live refinement, with the
//! fast-path repair worker on versus off. With repair off an update
//! waits for the next full iteration (seconds on large worlds); with
//! repair on the worker drains, re-places, and republishes in
//! milliseconds — the paper-scale claim is a repaired publish well
//! under one second on a 50k-user world.
//!
//! Emits one JSON document on stdout (for the BENCH trajectory) and a
//! human-readable table on stderr.
//!
//! Usage: `repair_latency [--users N] [--k N] [--partitions N]
//! [--seed N] [--updates N] [--baseline-updates N]`

use std::time::{Duration, Instant};

use knn_bench::{opt_or, TextTable};
use knn_core::{EngineConfig, KnnEngine};
use knn_datasets::WorkloadConfig;
use knn_graph::UserId;
use knn_serve::{KnnService, RefineOptions};
use knn_sim::{Profile, ProfileDelta, ProfileStore};

/// Item-id range far above any workload item, so every benched update
/// is detectable by profile equality alone.
const FRESH_ITEM_BASE: u32 = 10_000_000;

struct Measurement {
    mode: &'static str,
    latencies_ms: Vec<f64>,
    repaired_epochs: u64,
    epochs_crossed: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fresh_profile(tag: u32) -> Profile {
    Profile::from_unsorted_pairs(vec![
        (FRESH_ITEM_BASE + 2 * tag, 1.0),
        (FRESH_ITEM_BASE + 2 * tag + 1, 2.0),
    ])
    .expect("finite profile")
}

/// Submits `updates` replaces one at a time and measures each
/// submit→visible wall time by polling the served snapshot.
fn measure(
    mode: &'static str,
    repair: bool,
    config: EngineConfig,
    profiles: ProfileStore,
    updates: usize,
    n: usize,
) -> Measurement {
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let options = RefineOptions {
        // Refine forever: visibility is measured *under* live
        // iteration churn, not on an idle loop.
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair,
        ..RefineOptions::default()
    };
    let (service, refine) = knn_serve::spawn(engine, options).expect("spawn");
    // Let the loop enter its first iteration before measuring.
    std::thread::sleep(Duration::from_millis(50));
    let epoch_before = service.snapshot().epoch();

    let mut state = 0x9E37_79B9u64 | 1;
    let mut latencies_ms = Vec::with_capacity(updates);
    for i in 0..updates {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let user = UserId::new(((state >> 33) % n as u64) as u32);
        let fresh = fresh_profile(i as u32);
        let submitted = Instant::now();
        service
            .submit_update(ProfileDelta::replace(user, fresh.clone()))
            .expect("accepted");
        wait_visible(&service, user, &fresh);
        latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = service.stats();
    let epochs_crossed = service.snapshot().epoch() - epoch_before;
    refine.stop().expect("stop");
    Measurement {
        mode,
        latencies_ms,
        repaired_epochs: stats.repaired_epochs,
        epochs_crossed,
    }
}

fn wait_visible(service: &KnnService, user: UserId, expected: &Profile) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while service.snapshot().profiles().get(user) != expected {
        if Instant::now() > deadline {
            panic!("update for {user} never became visible");
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_or(&args, "users", 50_000);
    let k: usize = opt_or(&args, "k", 8);
    let m: usize = opt_or(&args, "partitions", 8);
    let seed: u64 = opt_or(&args, "seed", 42);
    let updates: usize = opt_or(&args, "updates", 40);
    let baseline_updates: usize = opt_or(&args, "baseline-updates", 6);

    eprintln!(
        "S2 repair latency: n={n}, K={k}, m={m}, seed={seed}, \
         updates={updates} (baseline {baseline_updates})"
    );

    let workload = WorkloadConfig::recommender().build(n, seed);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(workload.measure)
        .seed(seed)
        .build()
        .expect("config");

    let started = Instant::now();
    let results = [
        measure(
            "repair",
            true,
            config.clone(),
            workload.profiles.clone(),
            updates,
            n,
        ),
        measure(
            "baseline",
            false,
            config,
            workload.profiles,
            baseline_updates,
            n,
        ),
    ];

    let mut table = TextTable::new(&[
        "mode", "updates", "p50 ms", "p99 ms", "max ms", "repaired", "epochs",
    ]);
    let mut rows = Vec::new();
    for r in &results {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p50 = percentile(&sorted, 0.50);
        let p99 = percentile(&sorted, 0.99);
        let max = sorted.last().copied().unwrap_or(f64::NAN);
        let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
        table.row(&[
            r.mode.to_string(),
            sorted.len().to_string(),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            format!("{max:.1}"),
            r.repaired_epochs.to_string(),
            r.epochs_crossed.to_string(),
        ]);
        rows.push(format!(
            r#"{{"mode":"{}","updates":{},"p50_ms":{:.2},"p99_ms":{:.2},"max_ms":{:.2},"mean_ms":{:.2},"repaired_epochs":{},"epochs_crossed":{}}}"#,
            r.mode,
            sorted.len(),
            p50,
            p99,
            max,
            mean,
            r.repaired_epochs,
            r.epochs_crossed
        ));
    }
    eprintln!("{}", table.render());

    println!(
        r#"{{"bench":"repair_latency","users":{n},"k":{k},"partitions":{m},"seed":{seed},"wall_s":{:.2},"results":[{}]}}"#,
        started.elapsed().as_secs_f64(),
        rows.join(",")
    );
}
