//! Shared helpers for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (or one of its future-work experiments); see EXPERIMENTS.md at
//! the repository root for the index. This library only holds the
//! bits they share: argument parsing and aligned-table printing.

use std::fmt::Display;
use std::str::FromStr;

/// Returns `true` when `--name` is present in `args`.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == &format!("--{name}"))
}

/// Parses `--name value` from `args`.
///
/// # Panics
///
/// Panics with a usage message when the value is missing or does not
/// parse — these binaries are operator tools, not a library API.
pub fn opt<T: FromStr>(args: &[String], name: &str) -> Option<T>
where
    T::Err: Display,
{
    let key = format!("--{name}");
    let idx = args.iter().position(|a| a == &key)?;
    let raw = args
        .get(idx + 1)
        .unwrap_or_else(|| panic!("missing value after {key}"));
    match raw.parse() {
        Ok(v) => Some(v),
        Err(e) => panic!("invalid value {raw:?} for {key}: {e}"),
    }
}

/// `opt` with a default.
pub fn opt_or<T: FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: Display,
{
    opt(args, name).unwrap_or(default)
}

/// A right-aligned plain-text table printer.
///
/// ```
/// use knn_bench::TextTable;
///
/// let mut t = TextTable::new(&["dataset", "ops"]);
/// t.row(&["Wiki-Vote".to_string(), "211856".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("Wiki-Vote"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns (first column left,
    /// the rest right).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a signed percentage (e.g. `-4.5%`).
pub fn pct(new: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (new - baseline) / baseline * 100.0)
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_detection() {
        let a = args(&["--extended", "--seed", "7"]);
        assert!(flag(&a, "extended"));
        assert!(!flag(&a, "missing"));
    }

    #[test]
    fn opt_parsing() {
        let a = args(&["--seed", "7", "--slots", "4"]);
        assert_eq!(opt::<u64>(&a, "seed"), Some(7));
        assert_eq!(opt_or::<usize>(&a, "slots", 2), 4);
        assert_eq!(opt_or::<usize>(&a, "nope", 2), 2);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn opt_rejects_garbage() {
        let a = args(&["--seed", "xyz"]);
        let _ = opt::<u64>(&a, "seed");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn pct_and_bytes_format() {
        assert_eq!(pct(95.0, 100.0), "-5.0%");
        assert_eq!(pct(1.0, 0.0), "n/a");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
    }
}
