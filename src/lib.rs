//! # ooc-knn — Scaling KNN Computation over Large Graphs on a PC
//!
//! A from-scratch Rust implementation of the out-of-core K-nearest-
//! neighbors system described by Chiluka, Kermarrec and Olivares
//! (*Middleware 2014*): iterative KNN-graph refinement over user
//! profiles that do not fit in memory, executed with at most two
//! partitions of data resident at a time.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `knn-graph` | graph types, generators, edge-list I/O |
//! | [`sim`] | `knn-sim` | sparse profiles, similarity measures, workload generators |
//! | [`store`] | `knn-store` | the `StorageBackend` trait (disk + in-memory backends), codecs, I/O accounting, disk models, the 2-slot cache |
//! | [`cluster`] | `knn-cluster` | locality pre-pass: sketch embeddings, mini-batch k-means / random buckets, cluster-seeded `G(0)` |
//! | [`core`] | `knn-core` | the five-phase engine (partitioning → tuples → PI graph → KNN → updates) |
//! | [`shard`] | `knn-shard` | consistent-hash shard layer: `ShardedEngine`, cross-shard tuple exchange, routing backend |
//! | [`serve`] | `knn-serve` | online query layer: snapshot swap, concurrent `KnnService`, background refinement, sharded scatter-gather |
//! | [`baseline`] | `knn-baseline` | brute force, NN-Descent, naive out-of-core, recall |
//! | [`datasets`] | `knn-datasets` | Table-1 dataset replicas and workload presets |
//!
//! The most common entry points are also re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use ooc_knn::{EngineConfig, KnnEngine, WorkingDir, WorkloadConfig};
//!
//! # fn main() -> Result<(), ooc_knn::EngineError> {
//! // 500 users with planted cluster structure.
//! let workload = WorkloadConfig::recommender().build(500, 7);
//!
//! let config = EngineConfig::builder(500)
//!     .k(8)
//!     .num_partitions(8)
//!     .measure(workload.measure)
//!     .seed(7)
//!     .build()?;
//! let workdir = WorkingDir::temp("quickstart")?;
//! let mut engine = KnnEngine::new(config, workload.profiles, workdir)?;
//!
//! // Refine G(t) until under 5% of edges change per iteration.
//! let outcome = engine.run_until_converged(0.05, 10)?;
//! assert!(outcome.converged);
//!
//! // Every user now has (up to) K scored nearest neighbors.
//! let me = knn_graph::UserId::new(0);
//! assert!(!engine.graph().neighbors(me).is_empty());
//! # engine.into_working_dir().destroy()?;
//! # Ok(())
//! # }
//! ```
//!
//! Storage is pluggable ([`store::StorageBackend`]): swap the working
//! directory for [`KnnEngine::in_memory`] and the same loop runs with
//! zero filesystem — see `examples/in_memory.rs`.
//!
//! ## Serving queries while refining
//!
//! The batch engine above stops the world between iterations; the
//! [`serve`] layer instead publishes every iteration as an immutable
//! snapshot and answers top-K queries concurrently:
//!
//! ```
//! use ooc_knn::{EngineConfig, KnnEngine, WorkingDir, WorkloadConfig};
//! use ooc_knn::serve::{spawn, RefineOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = WorkloadConfig::recommender().build(200, 7);
//! let config = EngineConfig::builder(200)
//!     .k(6)
//!     .num_partitions(4)
//!     .measure(workload.measure)
//!     .seed(7)
//!     .build()?;
//! let engine = KnnEngine::new(config, workload.profiles, WorkingDir::temp("facade_serve")?)?;
//!
//! let (service, refine) = spawn(engine, RefineOptions::default())?;
//! let top = service.neighbors(knn_graph::UserId::new(42))?;
//! assert!(!top.is_empty());
//! let engine = refine.stop()?;
//! engine.into_working_dir().destroy()?;
//! # Ok(())
//! # }
//! ```

pub use knn_baseline as baseline;
pub use knn_cluster as cluster;
pub use knn_core as core;
pub use knn_datasets as datasets;
pub use knn_graph as graph;
pub use knn_serve as serve;
pub use knn_shard as shard;
pub use knn_sim as sim;
pub use knn_store as store;

pub use knn_baseline::{brute_force_knn, recall_at_k, NnDescent, NnDescentConfig};
pub use knn_cluster::{cluster_profiles, ClusterAssignment, ClusterMethod};
pub use knn_core::{
    EngineConfig, EngineError, Heuristic, IterationReport, KnnEngine, PartitionerKind, PiGraph,
};
pub use knn_datasets::{Table1Dataset, Workload, WorkloadConfig};
pub use knn_graph::{DiGraph, KnnGraph, Neighbor, UserId};
pub use knn_serve::{
    AdmissionConfig, KnnService, OverloadPolicy, RefineHandle, RefineOptions, ServeError, Snapshot,
};
pub use knn_shard::{ShardedEngine, ShardedIterationReport};
pub use knn_sim::{ItemId, Measure, Profile, ProfileDelta, ProfileStore, Similarity};
pub use knn_store::{DiskBackend, DiskModel, IoStats, MemBackend, StorageBackend, WorkingDir};
