//! The shard-layer acceptance bar: sharding is invisible. For the same
//! seeded workload, a [`ShardedEngine`] produces **the same
//! computation** at every shard count, on both backends, at several
//! thread counts — identical `KnnGraph`s after every iteration,
//! identical deterministic report fields, identical *summed* `IoStats`
//! totals, and a byte-identical union of persisted streams (each
//! stream merely lives on its owner shard instead of the one backend).
//! A plain `KnnEngine` rides along as the root reference, pinning the
//! 1-shard engine to the unsharded code path, and the serving layer's
//! scatter-gather front-end must answer exactly like the unsharded
//! service.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ooc_knn::core::metrics::IterationReport;
use ooc_knn::serve::{spawn, spawn_sharded, RefineOptions, ServeError};
use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::store::backend::StreamId;
use ooc_knn::store::IoSnapshot;
use ooc_knn::{
    brute_force_knn, recall_at_k, DiskBackend, EngineConfig, ItemId, KnnEngine, KnnGraph, Measure,
    MemBackend, Profile, ProfileDelta, ProfileStore, ShardedEngine, StorageBackend, UserId,
    WorkloadConfig,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 2] = [1, 2];

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    store
}

fn config(n: usize, k: usize, m: usize, seed: u64, threads: usize) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(Measure::Cosine)
        .seed(seed)
        .threads(threads)
        // Small spill threshold + table budget: the exchange step must
        // move re-encoded *spill runs* across shards, not only staged
        // blocks, for the equivalence claim to mean anything.
        .spill_threshold(64)
        .tuple_table_memory(Some(1024))
        .build()
        .expect("config")
}

/// The deterministic projection of a report — everything except
/// wall-clock durations (see `parallel_equivalence.rs`).
fn deterministic_fields(r: &IterationReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.iteration,
        r.phase_io,
        r.cache,
        r.predicted,
        r.tuples,
        r.schedule_len,
        (r.sims_computed, r.sims_skipped, r.sims_pruned),
        r.accums_seeded,
        (r.bytes_spilled, r.spill_runs, r.merge_passes),
        r.updates_applied,
        (r.replication_cost, r.intra_partition_tuples),
        r.changed_fraction.to_bits(),
    )
}

/// Every stream the backend (or routing façade) holds, sorted by
/// stream id — for a sharded engine this is the union over its shards.
fn all_stream_bytes(b: &dyn StorageBackend) -> Vec<(StreamId, Vec<u8>)> {
    let mut streams: Vec<(StreamId, Vec<u8>)> = b
        .list()
        .expect("list")
        .into_iter()
        .map(|s| (s, b.read(s).expect("read")))
        .collect();
    streams.sort_by_key(|&(s, _)| s);
    streams
}

#[allow(clippy::too_many_arguments)]
fn sharded_engine(
    n: usize,
    k: usize,
    m: usize,
    seed: u64,
    threads: usize,
    shards: usize,
    disk: bool,
    g0: &KnnGraph,
) -> ShardedEngine {
    let backends: Vec<Arc<dyn StorageBackend>> = (0..shards)
        .map(|_| -> Arc<dyn StorageBackend> {
            if disk {
                Arc::new(DiskBackend::temp("shard_equivalence").expect("disk backend"))
            } else {
                Arc::new(MemBackend::new())
            }
        })
        .collect();
    ShardedEngine::with_initial_graph_on(
        config(n, k, m, seed, threads),
        g0.clone(),
        workload(n, seed),
        backends,
    )
    .expect("sharded engine")
}

fn destroy_shards(engine: ShardedEngine) {
    let dirs: Vec<_> = engine
        .shards()
        .iter()
        .filter_map(|b| b.working_dir().cloned())
        .collect();
    drop(engine);
    for wd in dirs {
        wd.destroy().expect("cleanup");
    }
}

/// Shards {1, 2, 4} × backends {mem, disk} × threads {1, 2}, plus a
/// plain engine as root reference: thirteen engines over the same
/// seeded workload (updates queued mid-run on all of them) stay
/// bit-for-bit in lockstep for 3 iterations, and their persisted
/// stream unions and summed I/O meters agree byte for byte and counter
/// for counter.
#[test]
fn shard_count_never_changes_the_computation() {
    let n = 72;
    let (k, m, seed) = (4, 6, 23);
    let g0 = KnnGraph::random_init(n, k, seed);

    // The unsharded root reference.
    let reference_backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut reference = KnnEngine::with_initial_graph_on(
        config(n, k, m, seed, 2),
        g0.clone(),
        workload(n, seed),
        Arc::clone(&reference_backend),
    )
    .expect("reference engine");

    let mut engines: Vec<(String, ShardedEngine)> = Vec::new();
    for &shards in &SHARD_COUNTS {
        for disk in [false, true] {
            for &threads in &THREAD_COUNTS {
                let engine = sharded_engine(n, k, m, seed, threads, shards, disk, &g0);
                let backend = if disk { "disk" } else { "mem" };
                engines.push((
                    format!("shards={shards} backend={backend} threads={threads}"),
                    engine,
                ));
            }
        }
    }

    let updates = [
        ProfileDelta::set(UserId::new(5), ItemId::new(801), 3.5),
        ProfileDelta::replace(
            UserId::new(17),
            Profile::from_unsorted_pairs(vec![(3, 1.0), (8, 2.0)]).expect("profile"),
        ),
    ];
    for iteration in 0..3u32 {
        if iteration == 1 {
            for delta in &updates {
                reference.queue_update(delta).expect("update");
                for (_, engine) in &mut engines {
                    engine.queue_update(delta).expect("update");
                }
            }
        }
        let ref_report = reference.run_iteration().expect("iteration");
        assert!(
            ref_report.bytes_spilled > 0 && ref_report.merge_passes > 0,
            "iteration {iteration}: the spill/merge path was not exercised"
        );
        for (label, engine) in &mut engines {
            let sharded = engine.run_iteration().expect("iteration");
            assert_eq!(
                reference.graph(),
                engine.graph(),
                "iteration {iteration}: graph of [{label}] diverged"
            );
            assert_eq!(
                deterministic_fields(&ref_report),
                deterministic_fields(&sharded.report),
                "iteration {iteration}: report of [{label}] diverged"
            );
            if engine.num_shards() > 1 {
                assert!(
                    sharded.exchange.payloads > 0 && sharded.exchange.bytes > 0,
                    "iteration {iteration}: [{label}] moved no exchange traffic"
                );
                assert!(
                    sharded.exchange.spill_payloads > 0,
                    "iteration {iteration}: [{label}] exchanged no spill runs"
                );
            } else {
                assert_eq!(
                    sharded.exchange.payloads, 0,
                    "iteration {iteration}: a 1-shard engine has no foreign buckets"
                );
            }
        }
    }

    // Byte-for-byte: every engine's persisted stream union equals the
    // unsharded reference backend's stream set.
    let reference_streams = all_stream_bytes(reference_backend.as_ref());
    assert!(
        reference_streams.len() > 2 * m,
        "reference run persisted suspiciously few streams"
    );
    let reference_io: IoSnapshot = reference.io_snapshot();
    for (label, engine) in &engines {
        assert_eq!(
            reference_streams,
            all_stream_bytes(engine.router().as_ref() as &dyn StorageBackend),
            "persisted streams of [{label}] diverged"
        );
        assert_eq!(
            reference_io,
            engine.io_snapshot(),
            "summed IoStats of [{label}] diverged"
        );
    }

    for (_, engine) in engines {
        destroy_shards(engine);
    }
}

/// Convergence pressure across the shard axis: independent runs to
/// convergence land on the same iteration count and the same graph at
/// every shard count.
#[test]
fn independent_runs_to_convergence_agree_across_shard_counts() {
    let n = 64;
    let (k, m, seed) = (4, 4, 31);
    let mut reference: Option<(usize, KnnGraph)> = None;
    for &shards in &SHARD_COUNTS {
        let mut engine =
            ShardedEngine::in_memory(config(n, k, m, seed, 2), workload(n, seed), shards)
                .expect("engine");
        let outcome = engine.run_until_converged(0.02, 12).expect("convergence");
        match &reference {
            None => reference = Some((outcome.iterations_run, engine.graph().clone())),
            Some((ref_iters, ref_graph)) => {
                assert_eq!(ref_iters, &outcome.iterations_run, "shards={shards}");
                assert_eq!(ref_graph, engine.graph(), "shards={shards}");
            }
        }
    }
}

/// The serving half of the acceptance bar: scatter-gather answers from
/// a 4-shard service are identical to the unsharded service over the
/// same engine state — neighbors, batches (and their generation tag),
/// and ad-hoc profile scans.
#[test]
fn scatter_gather_matches_the_single_shard_service() {
    let n = 72;
    let (k, m, seed) = (4, 6, 23);
    let cfg = config(n, k, m, seed, 2);
    let mut plain = KnnEngine::in_memory(cfg.clone(), workload(n, seed)).expect("plain engine");
    let mut sharded = ShardedEngine::in_memory(cfg, workload(n, seed), 4).expect("sharded engine");
    for _ in 0..3 {
        plain.run_iteration().expect("iteration");
        sharded.run_iteration().expect("iteration");
    }
    assert_eq!(plain.graph(), sharded.graph());

    // Freeze both services at generation 0 so the comparison is not
    // racing background refinement.
    let frozen = RefineOptions {
        convergence_threshold: None,
        max_iterations: Some(0),
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(plain, frozen.clone()).expect("spawn");
    let (sharded_service, sharded_refine) = spawn_sharded(sharded, frozen).expect("spawn_sharded");
    assert_eq!(sharded_service.num_shards(), 4);
    assert_eq!(sharded_service.num_users(), service.num_users());

    let users: Vec<UserId> = (0..n as u32).map(UserId::new).collect();
    for &u in &users {
        assert_eq!(
            service.neighbors(u).expect("known user"),
            sharded_service.neighbors(u).expect("known user"),
            "neighbors({u:?}) diverged"
        );
    }
    let batch = service.neighbors_many(&users).expect("batch");
    let sharded_batch = sharded_service.neighbors_many(&users).expect("batch");
    assert_eq!(batch, sharded_batch);
    assert_eq!(batch.generation, 0);

    // Ad-hoc scans: per-shard top-k gather equals the full scan.
    let snapshot = service.snapshot();
    for &u in users.iter().take(8) {
        let query = snapshot.profiles().get(u);
        assert_eq!(
            service.query_profile(query, k + 2).expect("finite query"),
            sharded_service
                .query_profile(query, k + 2)
                .expect("finite query"),
            "query_profile near {u:?} diverged"
        );
    }

    // All-or-nothing validation names the offending id.
    let bad = UserId::new(n as u32);
    let err = sharded_service
        .neighbors_many(&[UserId::new(0), bad])
        .expect_err("must reject");
    assert!(matches!(err, ServeError::UnknownUser { user, .. } if user == bad));
    assert!(sharded_service.neighbors(bad).is_err());

    refine.stop().expect("stop");
    sharded_refine.stop().expect("stop");
}

/// Live updates through the sharded service: a submitted delta is
/// routed to its owner shard's durable queue, applied by a later
/// iteration, and surfaces in the coherent per-shard snapshots.
#[test]
fn updates_flow_through_the_sharded_service() {
    let n = 120;
    let workload = WorkloadConfig::recommender().build(n, 11);
    let cfg = EngineConfig::builder(n)
        .k(6)
        .num_partitions(4)
        .measure(workload.measure)
        .seed(11)
        .threads(2)
        .build()
        .expect("config");
    let engine = ShardedEngine::in_memory(cfg, workload.profiles, 3).expect("engine");
    let (service, refine) = spawn_sharded(
        engine,
        RefineOptions {
            convergence_threshold: Some(0.02),
            max_iterations: Some(10),
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn_sharded");

    // Served immediately from generation 0.
    assert_eq!(service.neighbors(UserId::new(0)).expect("known").len(), 6);

    let target = UserId::new(7);
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(9_999), 5.0);
    service
        .submit_update(ProfileDelta::replace(target, fresh.clone()))
        .expect("valid update");

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let batch = service.neighbors_many(&[target]).expect("batch");
        if batch.generation > 0 {
            let engine_view = refine.current_epoch();
            assert!(engine_view >= batch.generation);
        }
        // The update has surfaced once the owner shard's snapshot
        // carries the replaced profile.
        let done = service
            .query_profile(&fresh, 1)
            .expect("finite query")
            .first()
            .map(|n| n.id)
            == Some(target);
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "update never surfaced in the sharded snapshots"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = service.stats();
    assert_eq!(stats.updates_submitted, 1);
    assert_eq!(stats.updates_drained, 1);

    let engine = refine.stop().expect("stop");
    assert_eq!(
        engine.profile_of(target).expect("profile readable"),
        fresh,
        "the durable owner-shard log must have applied the delta"
    );
    // Post-shutdown submits fail closed.
    assert!(matches!(
        service.submit_update(ProfileDelta::set(UserId::new(1), ItemId::new(1), 1.0)),
        Err(ServeError::Stopped)
    ));
}

/// Recall floors hold under sharding: the 4-shard engine's converged
/// graph is as accurate as the unsharded engine's (it is the *same*
/// graph, but the floor keeps this suite meaningful on its own).
#[test]
fn sharded_recall_meets_the_floors() {
    for (workload_config, seed, floor) in [
        (WorkloadConfig::recommender(), 42u64, 0.93),
        (WorkloadConfig::tags(), 7, 0.80),
    ] {
        let n = 400;
        let k = 10;
        let built = workload_config.build(n, seed);
        let truth = brute_force_knn(&built.profiles, &built.measure, k, 4);
        let cfg = EngineConfig::builder(n)
            .k(k)
            .num_partitions(8)
            .measure(built.measure)
            .threads(4)
            .seed(seed)
            .build()
            .expect("config");
        let mut engine = ShardedEngine::in_memory(cfg, built.profiles, 4).expect("engine");
        engine.run_until_converged(0.01, 20).expect("convergence");
        let recall = recall_at_k(engine.graph(), &truth).mean_recall;
        assert!(
            recall >= floor,
            "sharded recall {recall:.3} under the {floor} floor (seed {seed})"
        );
    }
}
