//! End-to-end recall regression: the engine, run to convergence on
//! seeded `knn-datasets` workloads, must recover the brute-force
//! ground-truth KNN graph to a pinned recall@K floor. This is the
//! quality backstop under the partition-parallel executor — a refactor
//! that silently degrades the graph (dropped tuples, broken merges,
//! mis-ordered commits) fails here even if it stays self-consistent.
//!
//! The engines run with `threads = 4` so the floor is measured on the
//! parallel paths; by the determinism guarantee (see
//! `parallel_equivalence.rs`) the numbers are identical at any other
//! thread count.

use ooc_knn::{brute_force_knn, recall_at_k, EngineConfig, KnnEngine, WorkloadConfig};

/// Converges the engine (in memory, 4 worker threads) on `workload`
/// and returns mean recall@K against brute force.
fn converged_recall(workload: &WorkloadConfig, n: usize, k: usize, seed: u64) -> f64 {
    let built = workload.build(n, seed);
    let truth = brute_force_knn(&built.profiles, &built.measure, k, 4);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(8)
        .measure(built.measure)
        .threads(4)
        .seed(seed)
        .build()
        .expect("config");
    let mut engine = KnnEngine::in_memory(config, built.profiles).expect("engine");
    let outcome = engine.run_until_converged(0.01, 20).expect("run");
    assert!(
        outcome.converged,
        "{} did not converge in 20 iterations (final change {:.4})",
        built.name, outcome.final_change_fraction
    );
    let report = recall_at_k(engine.graph(), &truth);
    eprintln!(
        "{}: n={n} K={k} seed={seed} → mean recall {:.4} (min {:.4}, {} perfect / {} measured) after {} iterations",
        built.name,
        report.mean_recall,
        report.min_recall,
        report.perfect_users,
        report.users_measured,
        outcome.iterations_run
    );
    report.mean_recall
}

/// Recommender-style clustered ratings under cosine: the paper's
/// friendliest regime; the refined graph must be near-exact.
#[test]
fn recall_floor_on_clustered_ratings() {
    let recall = converged_recall(&WorkloadConfig::recommender(), 400, 10, 42);
    assert!(
        recall >= 0.93,
        "mean recall@10 regressed to {recall:.4} (floor 0.93)"
    );
}

/// Tag-style Zipf item sets under Jaccard: weaker cluster structure,
/// so the floor is lower — but a broken executor still lands far
/// below it.
#[test]
fn recall_floor_on_zipf_tags() {
    let recall = converged_recall(&WorkloadConfig::tags(), 400, 10, 7);
    assert!(
        recall >= 0.80,
        "mean recall@10 regressed to {recall:.4} (floor 0.80)"
    );
}
