//! Properties of the cross-shard exchange streams: a tuple multiset
//! split between a scanning shard and an owning shard — staged blocks
//! and spill runs shipped as re-encoded `ExchangeRun` streams — merges
//! to exactly the bucket bytes, `PiGraph`, and meta nibbles a single
//! process produces from the same offers. Covers foreign-only buckets,
//! empty (fully deduplicated) foreign blocks, and runs large enough to
//! straddle several `read_chunk` windows on both the extract and the
//! merge side.

use std::sync::Arc;

use ooc_knn::core::tuple_table::{
    extract_foreign_payloads, merge_parts, merge_parts_with_exchange, meta_bits, BucketMeta,
    ExchangeSource, ForeignPayload, TupleTable,
};
use ooc_knn::core::{Partitioning, PiGraph};
use ooc_knn::store::backend::StreamId;
use ooc_knn::{MemBackend, StorageBackend};
use proptest::prelude::*;

/// Round-robin assignment of `n` users over `m` partitions.
fn partitioning(n: usize, m: usize) -> Partitioning {
    Partitioning::from_assignment((0..n as u32).map(|u| u % m as u32).collect(), m)
        .expect("assignment")
}

/// Offers every directed `(s, d, old_path)` tuple into a fresh table
/// on `backend` and returns its parts.
fn scan(
    backend: &dyn StorageBackend,
    partitioning: &Partitioning,
    spill_threshold: usize,
    tuples: &[(u32, u32, bool)],
) -> ooc_knn::core::tuple_table::TableParts {
    let mut table = TupleTable::new(backend, partitioning, spill_threshold);
    for &(s, d, old) in tuples {
        table.offer_flagged(s, d, old).expect("offer");
    }
    table.into_parts()
}

/// Every persisted tuple-bucket stream on `backend`, with its bytes.
fn bucket_streams(backend: &dyn StorageBackend) -> Vec<((u32, u32), Vec<u8>)> {
    let mut buckets: Vec<((u32, u32), Vec<u8>)> = backend
        .list()
        .expect("list")
        .into_iter()
        .filter_map(|s| match s {
            StreamId::TupleBucket(i, j) => Some(((i, j), backend.read(s).expect("read"))),
            _ => None,
        })
        .collect();
    buckets.sort_by_key(|&(k, _)| k);
    buckets
}

/// Ships `payloads` to `owner` as persisted `ExchangeRun` streams and
/// returns the merge's source descriptors — what the sharded phase-2
/// driver does after draining the fabric.
fn persist_exchange(
    owner: &dyn StorageBackend,
    payloads: &[ForeignPayload],
) -> Vec<ExchangeSource> {
    payloads
        .iter()
        .enumerate()
        .map(|(seq, p)| {
            let seq = seq as u32;
            owner
                .write(StreamId::ExchangeRun(p.bucket.0, p.bucket.1, seq), &p.bytes)
                .expect("persist exchange run");
            ExchangeSource {
                bucket: p.bucket,
                seq,
                from_spill: p.from_spill,
            }
        })
        .collect()
}

/// Runs the two-shard split (scanner + owner) against the single-table
/// reference and asserts byte/value identity of everything persisted
/// and returned. `is_local` decides which buckets stay on the scanner.
fn assert_split_matches_reference(
    n: usize,
    m: usize,
    spill_threshold: usize,
    tuples: &[(u32, u32, bool)],
    is_local: impl Fn((u32, u32)) -> bool + Copy,
) -> (PiGraph, BucketMeta, u64) {
    let partitioning = partitioning(n, m);

    // Reference: one process, one table, one backend.
    let reference: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let ref_parts = scan(reference.as_ref(), &partitioning, spill_threshold, tuples);
    let (ref_pi, ref_stats, ref_meta) =
        merge_parts(reference.as_ref(), m, vec![ref_parts], 1).expect("reference merge");

    // Split: the scanner extracts foreign buckets, the owner persists
    // and merges them as exchange streams.
    let scanner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let owner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut parts = vec![scan(
        scanner.as_ref(),
        &partitioning,
        spill_threshold,
        tuples,
    )];
    let payloads =
        extract_foreign_payloads(scanner.as_ref(), &mut parts, is_local).expect("extract");
    for p in &payloads {
        assert!(!is_local(p.bucket), "a local bucket left the scanner");
        assert!(p.rows > 0 && !p.bytes.is_empty(), "empty payload shipped");
    }
    let sources = persist_exchange(owner.as_ref(), &payloads);
    let (local_pi, local_stats, local_meta) =
        merge_parts_with_exchange(scanner.as_ref(), m, parts, 1, Vec::new()).expect("local merge");
    let (foreign_pi, foreign_stats, foreign_meta) =
        merge_parts_with_exchange(owner.as_ref(), m, Vec::new(), 1, sources)
            .expect("foreign merge");

    // Stitch the halves like the sharded driver does.
    let mut pi = PiGraph::new(m);
    for ((i, j), w) in local_pi.iter_buckets().chain(foreign_pi.iter_buckets()) {
        pi.add_bucket(i, j, w);
    }
    let mut meta = local_meta;
    meta.absorb(foreign_meta);
    let unique = local_stats.unique + foreign_stats.unique;

    assert_eq!(ref_pi, pi, "stitched PiGraph diverged");
    assert_eq!(ref_meta, meta, "stitched meta nibbles diverged");
    assert_eq!(ref_stats.unique, unique, "unique totals diverged");
    assert_eq!(
        ref_stats.offered, local_stats.offered,
        "offers are counted at scan time, on the scanner"
    );

    // Persisted bucket bytes: the union of the two shards equals the
    // reference set, and every bucket lives only with its owner.
    let ref_buckets = bucket_streams(reference.as_ref());
    let local_buckets = bucket_streams(scanner.as_ref());
    let foreign_buckets = bucket_streams(owner.as_ref());
    for (key, _) in &local_buckets {
        assert!(is_local(*key), "foreign bucket persisted on the scanner");
    }
    for (key, _) in &foreign_buckets {
        assert!(!is_local(*key), "local bucket persisted on the owner");
    }
    let mut union = local_buckets;
    union.extend(foreign_buckets);
    union.sort_by_key(|&(k, _)| k);
    assert_eq!(ref_buckets, union, "persisted bucket bytes diverged");

    // Exchange streams are consumed by the merge: none survive, on
    // either side.
    for backend in [&scanner, &owner] {
        assert!(
            !backend
                .list()
                .expect("list")
                .iter()
                .any(|s| matches!(s, StreamId::ExchangeRun(..) | StreamId::TupleRun(..))),
            "merge left run streams behind"
        );
    }
    (pi, meta, unique)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Random tuple multisets (duplicates, both directions, mixed
    /// old-path flags) split across a random bucket-ownership
    /// predicate round-trip through the exchange encoding with meta
    /// nibbles intact.
    #[test]
    fn foreign_runs_round_trip_losslessly(
        n in 16usize..80,
        m in 2usize..6,
        spill_threshold in 4usize..40,
        parity in 0u32..2,
        raw in proptest::collection::vec((0u32..80, 0u32..80, proptest::bool::ANY), 10..300),
    ) {
        let tuples: Vec<(u32, u32, bool)> = raw
            .into_iter()
            .map(|(s, d, old)| (s % n as u32, d % n as u32, old))
            .filter(|&(s, d, _)| s != d)
            .collect();
        prop_assume!(!tuples.is_empty());
        let (pi, meta, unique) = assert_split_matches_reference(
            n,
            m,
            spill_threshold,
            &tuples,
            |key| (key.0 + key.1) % 2 == parity,
        );
        // The multiset survived: every canonical pair is accounted in
        // the PI graph, and old-path nibbles never leak into the
        // persisted direction bits.
        prop_assert_eq!(
            pi.iter_buckets().map(|(_, w)| w).sum::<u64>(),
            unique
        );
        for ((i, j), w) in pi.iter_buckets() {
            let len = meta.bucket_len((i, j)).expect("merged bucket has meta");
            prop_assert_eq!(len as u64, w);
            for idx in 0..len {
                let bits = meta.bits((i, j), idx);
                prop_assert!(bits & meta_bits::DIRECTION_MASK != 0, "tuple without direction");
            }
        }
    }
}

/// Every bucket is foreign: the scanner keeps nothing, the owner
/// builds every bucket purely from exchange streams (the foreign-only
/// bucket path), and the result still matches the reference bytes.
#[test]
fn foreign_only_buckets_merge_cleanly() {
    let n = 48;
    let tuples: Vec<(u32, u32, bool)> = (0..600u32)
        .map(|i| ((i * 7) % n, (i * 13 + 1) % n, i % 3 == 0))
        .filter(|&(s, d, _)| s != d)
        .collect();
    assert_split_matches_reference(n as usize, 4, 8, &tuples, |_| false);
}

/// A spill run far larger than one `read_chunk` window (64 KiB): the
/// extract side drains it chunk by chunk, the owner re-merges it chunk
/// by chunk, and the persisted bucket still matches the single-process
/// bytes row for row.
#[test]
fn exchange_runs_straddle_read_chunk_windows() {
    let n = 100_000u32;
    let m = 2;
    // ~50k distinct canonical pairs inside one bucket: every pair
    // (2u, 2u+1) has both endpoints even/odd adjacent, all landing in
    // bucket (0, 1) under the round-robin assignment. A 40k spill
    // threshold forces one giant run plus a staged remainder.
    let tuples: Vec<(u32, u32, bool)> = (0..50_000u32)
        .map(|i| {
            let u = 2 * i;
            (u, u + 1, i % 2 == 0)
        })
        .collect();
    let (pi, _, unique) = assert_split_matches_reference(n as usize, m, 40_000, &tuples, |_| false);
    assert_eq!(unique, 50_000);
    assert_eq!(pi.iter_buckets().count(), 1);
}
