//! The storage-backend acceptance bar: `MemBackend` and `DiskBackend`
//! are interchangeable — identical graphs for identical seeds,
//! byte-identical persisted state — and the disk backend still opens
//! working directories written with the pre-trait path-based API.

use std::sync::Arc;

use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::store::backend::StorageBackend;
use ooc_knn::store::delta_log::DeltaLog;
use ooc_knn::store::record_file::{write_meta, write_pairs, write_scored_pairs, write_user_lists};
use ooc_knn::store::{DiskBackend, IoStats, MemBackend, RecordKind, StreamId};
use ooc_knn::{
    EngineConfig, EngineError, ItemId, KnnEngine, KnnGraph, Measure, ProfileDelta, ProfileStore,
    UserId, WorkingDir,
};

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    store
}

fn config(n: usize, k: usize, m: usize, seed: u64) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(Measure::Cosine)
        .seed(seed)
        .build()
        .expect("config")
}

/// The tentpole equivalence claim: for the same config/seed/profiles
/// — including queued phase-5 updates landing mid-run — the in-memory
/// and on-disk engines produce identical graphs after every one of 3
/// iterations, and their persisted KNN slices are byte-identical.
#[test]
fn mem_and_disk_engines_produce_identical_graphs() {
    let n = 60;
    let (k, m, seed) = (4, 5, 17);
    let g0 = KnnGraph::random_init(n, k, seed);

    let disk: Arc<dyn StorageBackend> =
        Arc::new(DiskBackend::temp("equivalence_disk").expect("disk backend"));
    let mem: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut engines: Vec<KnnEngine> = [Arc::clone(&disk), Arc::clone(&mem)]
        .into_iter()
        .map(|b| {
            KnnEngine::with_initial_graph_on(
                config(n, k, m, seed),
                g0.clone(),
                workload(n, seed),
                b,
            )
            .expect("engine")
        })
        .collect();

    for iteration in 0..3 {
        if iteration == 1 {
            // Same updates queued on both sides mid-run.
            for engine in &mut engines {
                engine
                    .queue_update(&ProfileDelta::set(UserId::new(3), ItemId::new(901), 4.5))
                    .expect("update");
                engine
                    .queue_update(&ProfileDelta::replace(
                        UserId::new(11),
                        ooc_knn::Profile::from_unsorted_pairs(vec![(5, 1.0), (6, 2.0)])
                            .expect("profile"),
                    ))
                    .expect("update");
            }
        }
        let reports: Vec<_> = engines
            .iter_mut()
            .map(|e| e.run_iteration().expect("iteration"))
            .collect();
        assert_eq!(
            engines[0].graph(),
            engines[1].graph(),
            "graphs diverged at iteration {iteration}"
        );
        assert_eq!(
            reports[0].updates_applied, reports[1].updates_applied,
            "phase-5 behavior diverged at iteration {iteration}"
        );
    }

    // Byte-for-byte: every persisted stream of the run's final state
    // (unframed payloads as the backends return them) must agree.
    for p in 0..m as u32 {
        for stream in [
            StreamId::KnnSlice(p),
            StreamId::Profiles(p),
            StreamId::Assignment,
            StreamId::Meta,
        ] {
            assert_eq!(
                disk.read(stream).expect("disk read"),
                mem.read(stream).expect("mem read"),
                "stream {stream} differs between backends"
            );
        }
    }

    let wd = disk.working_dir().expect("disk-backed").clone();
    drop(engines);
    wd.destroy().expect("cleanup");
}

/// Disk compatibility: a working directory laid out **only** with the
/// legacy path-based `record_file` / `DeltaLog` API — exactly what
/// pre-refactor engines wrote — resumes through `DiskBackend`,
/// continues iterating, and applies the update log it found.
#[test]
fn disk_backend_reopens_a_pre_refactor_working_directory() {
    let n = 30;
    let (k, m, seed) = (3, 3, 5);
    let g = KnnGraph::random_init(n, k, seed);
    let profiles = workload(n, seed);
    let assignment: Vec<u32> = (0..n as u32).map(|u| u % m as u32).collect();

    let wd = WorkingDir::temp("legacy_dir").expect("workdir");
    let stats = IoStats::new();
    // meta.bin — keys as the pre-refactor engine wrote them.
    write_meta(
        &wd.meta_path(),
        &[
            (1, 2u64), // iteration
            (2, n as u64),
            (3, k as u64),
            (4, m as u64),
            (5, seed),
        ],
        &stats,
    )
    .expect("meta");
    // assignment.bin
    let assignment_rows: Vec<(u32, u32)> = assignment
        .iter()
        .enumerate()
        .map(|(u, &p)| (u as u32, p))
        .collect();
    write_pairs(
        &wd.assignment_path(),
        RecordKind::Assignment,
        &assignment_rows,
        &stats,
    )
    .expect("assignment");
    // Per-partition KNN slices and profile files.
    for p in 0..m as u32 {
        let mut slice = Vec::new();
        let mut profile_rows = Vec::new();
        for u in 0..n as u32 {
            if assignment[u as usize] != p {
                continue;
            }
            for nb in g.neighbors(UserId::new(u)) {
                slice.push((u, nb.id.raw(), nb.sim));
            }
            let row: Vec<(u32, f32)> = profiles
                .get(UserId::new(u))
                .iter()
                .map(|(i, w)| (i.raw(), w))
                .collect();
            profile_rows.push((u, row));
        }
        write_scored_pairs(&wd.knn_path(p), &slice, &stats).expect("knn slice");
        write_user_lists(
            &wd.profiles_path(p),
            RecordKind::Profiles,
            &profile_rows,
            &stats,
        )
        .expect("profiles");
    }
    // updates.log with one still-pending delta, via the legacy log.
    let mut log = DeltaLog::open(wd.updates_path()).expect("log");
    log.append(
        &ProfileDelta::set(UserId::new(7), ItemId::new(4242), 3.0),
        &stats,
    )
    .expect("append");
    drop(log);

    // Resume through the trait-based disk backend.
    let mut engine = KnnEngine::resume(config(n, k, m, seed), wd).expect("resume");
    assert_eq!(engine.iteration(), 2);
    assert_eq!(
        engine.graph(),
        &g,
        "legacy slices must rebuild G(t) exactly"
    );
    assert_eq!(engine.pending_updates().expect("pending"), 1);
    let report = engine.run_iteration().expect("iteration");
    assert_eq!(report.updates_applied, 1, "legacy update log must drain");
    assert_eq!(
        engine
            .profile_of(UserId::new(7))
            .expect("profile")
            .get(ItemId::new(4242)),
        Some(3.0)
    );
    engine.into_working_dir().destroy().expect("cleanup");
}

/// Resume hardening: a KNN slice naming the same user twice is a
/// corrupt input, not a silent merge.
#[test]
fn resume_rejects_slice_naming_a_user_twice() {
    let n = 20;
    let cfg = config(n, 3, 2, 9);
    let wd = WorkingDir::temp("resume_dup_user").expect("workdir");
    let root = wd.root().to_path_buf();
    let engine = KnnEngine::new(cfg.clone(), workload(n, 9), wd).expect("engine");
    drop(engine);

    // Rewrite partition 0's slice so user 0 appears in two separate
    // runs of rows (0, then 2, then 0 again).
    let wd = WorkingDir::create(&root).expect("reopen");
    let stats = IoStats::new();
    let rows = vec![
        (0u32, 1u32, 0.9f32),
        (2, 1, 0.8),
        (0, 3, 0.7), // user 0 again: second run
    ];
    write_scored_pairs(&wd.knn_path(0), &rows, &stats).expect("slice");
    let err = KnnEngine::resume(cfg.clone(), wd).expect_err("must reject");
    assert!(
        matches!(&err, EngineError::InputMismatch { .. }),
        "got {err:?}"
    );
    assert!(
        err.to_string().contains("twice"),
        "error must say the user is duplicated: {err}"
    );

    // A user also cannot span two partitions' slices.
    let wd = WorkingDir::create(&root).expect("reopen");
    write_scored_pairs(&wd.knn_path(0), &[(0, 1, 0.9)], &stats).expect("slice 0");
    write_scored_pairs(&wd.knn_path(1), &[(0, 2, 0.8)], &stats).expect("slice 1");
    let err = KnnEngine::resume(cfg, wd).expect_err("must reject");
    assert!(
        matches!(&err, EngineError::InputMismatch { .. }),
        "got {err:?}"
    );
    WorkingDir::create(&root)
        .expect("reopen")
        .destroy()
        .expect("cleanup");
}

/// Resume hardening: a KNN slice carrying more than `K` neighbors for
/// one user is rejected with a typed error.
#[test]
fn resume_rejects_slice_with_more_than_k_neighbors() {
    let n = 20;
    let cfg = config(n, 2, 2, 10); // K = 2
    let wd = WorkingDir::temp("resume_over_k").expect("workdir");
    let root = wd.root().to_path_buf();
    let engine = KnnEngine::new(cfg.clone(), workload(n, 10), wd).expect("engine");
    drop(engine);

    let wd = WorkingDir::create(&root).expect("reopen");
    let stats = IoStats::new();
    // Three neighbors for user 0 with K = 2.
    let rows = vec![(0u32, 1u32, 0.9f32), (0, 2, 0.8), (0, 3, 0.7)];
    write_scored_pairs(&wd.knn_path(0), &rows, &stats).expect("slice");
    let err = KnnEngine::resume(cfg, wd).expect_err("must reject");
    assert!(
        matches!(&err, EngineError::InputMismatch { .. }),
        "got {err:?}"
    );
    assert!(
        err.to_string().contains("neighbors"),
        "error must name the bound violation: {err}"
    );
    WorkingDir::create(&root)
        .expect("reopen")
        .destroy()
        .expect("cleanup");
}

/// Resume hardening: a slice naming a user outside the configured
/// range is rejected (the id would otherwise index out of the graph).
#[test]
fn resume_rejects_slice_naming_unknown_user() {
    let n = 10;
    let cfg = config(n, 2, 2, 11);
    let wd = WorkingDir::temp("resume_unknown_user").expect("workdir");
    let root = wd.root().to_path_buf();
    let engine = KnnEngine::new(cfg.clone(), workload(n, 11), wd).expect("engine");
    drop(engine);

    let wd = WorkingDir::create(&root).expect("reopen");
    let stats = IoStats::new();
    write_scored_pairs(&wd.knn_path(0), &[(99, 1, 0.9)], &stats).expect("slice");
    let err = KnnEngine::resume(cfg, wd).expect_err("must reject");
    assert!(
        matches!(&err, EngineError::InputMismatch { .. }),
        "got {err:?}"
    );
    WorkingDir::create(&root)
        .expect("reopen")
        .destroy()
        .expect("cleanup");
}
