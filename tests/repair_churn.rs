//! Reconciliation contract of the fast-path repair worker, end to
//! end: repaired snapshots are a serving-side convenience that must
//! leave **no trace** in the engine — after reconciliation the graph
//! is bit-identical to a never-repaired twin's — and convergence
//! quality under churn must still clear the pinned recall floors.

use std::time::{Duration, Instant};

use ooc_knn::serve::{spawn, RefineOptions};
use ooc_knn::{
    brute_force_knn, recall_at_k, EngineConfig, KnnEngine, ProfileDelta, UserId, WorkloadConfig,
};

const N: usize = 400;
const K: usize = 10;
const SEED: u64 = 42;
const DONOR_SEED: u64 = 4242;

fn config() -> EngineConfig {
    let built = WorkloadConfig::recommender().build(N, SEED);
    EngineConfig::builder(N)
        .k(K)
        .num_partitions(8)
        .measure(built.measure)
        .threads(4)
        .seed(SEED)
        .build()
        .expect("config")
}

/// Deterministic churn: replace every 4th user's profile with the
/// same-id profile from an independently seeded build of the same
/// workload (keeps the world's statistics realistic).
fn churn_deltas() -> Vec<ProfileDelta> {
    let donor = WorkloadConfig::recommender().build(N, DONOR_SEED).profiles;
    (0..N as u32)
        .step_by(4)
        .map(|u| {
            let user = UserId::new(u);
            ProfileDelta::replace(user, donor.get(user).clone())
        })
        .collect()
}

/// Bit-identity after reconciliation: a served engine with repair on,
/// once its updates reconcile, must be indistinguishable from a twin
/// that received the same deltas through plain `queue_update` — at
/// every reconciling iteration and on every iteration after the last.
///
/// Deltas are submitted one at a time, each followed by a wait for
/// its exact (non-repaired) publish, so delta `i` deterministically
/// lands in iteration `i + 1` on both sides — the repaired epochs in
/// between are pure serving-side state that must leave no trace.
#[test]
fn reconciled_engine_is_bit_identical_to_never_repaired_twin() {
    let deltas: Vec<ProfileDelta> = churn_deltas().into_iter().take(12).collect();

    let built = WorkloadConfig::recommender().build(N, SEED);
    let engine = KnnEngine::in_memory(config(), built.profiles).expect("live engine");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            // Zero budgeted iterations: every iteration that runs is
            // an update-forced reconcile.
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: true,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    let built = WorkloadConfig::recommender().build(N, SEED);
    let mut twin = KnnEngine::in_memory(config(), built.profiles).expect("twin engine");

    for (i, delta) in deltas.iter().enumerate() {
        service.submit_update(delta.clone()).expect("accepted");
        // Wait for the exact reconciling publish of this delta.
        let deadline = Instant::now() + Duration::from_secs(120);
        let snapshot = loop {
            let snapshot = service.snapshot();
            if !snapshot.repaired() && snapshot.iteration() == (i + 1) as u64 {
                break snapshot;
            }
            assert!(
                Instant::now() < deadline,
                "delta {i} never reconciled (at iteration {}, repaired {})",
                snapshot.iteration(),
                snapshot.repaired()
            );
            std::thread::sleep(Duration::from_millis(1));
        };

        twin.queue_update(delta).expect("queued");
        twin.run_iteration().expect("twin reconcile");
        assert_eq!(
            snapshot.graph().as_ref(),
            twin.graph(),
            "served exact graph diverged from the twin at iteration {}",
            i + 1
        );
    }
    assert!(
        service.stats().repaired_epochs >= deltas.len() as u64,
        "the repair worker never published"
    );

    let mut live = refine.stop().expect("stop");
    assert_eq!(live.iteration(), deltas.len() as u64);
    assert_eq!(
        live.graph(),
        twin.graph(),
        "repair left a trace in the engine graph"
    );
    assert_eq!(
        live.export_profiles().expect("live export"),
        twin.export_profiles().expect("twin export"),
        "repair left a trace in the engine profiles"
    );

    // And the histories never diverge afterwards.
    for step in 0..3 {
        live.run_iteration().expect("live iteration");
        twin.run_iteration().expect("twin iteration");
        assert_eq!(
            live.graph(),
            twin.graph(),
            "graphs diverged {} iterations after reconciliation",
            step + 1
        );
    }
}

/// Convergence under churn: updates streamed *while* the loop
/// iterates (repair on) must not degrade final quality — the served
/// graph equals the engine's, and recall against brute force on the
/// post-churn profiles clears the pinned floor.
#[test]
fn converges_to_recall_floor_under_churn() {
    let deltas = churn_deltas();
    let total = deltas.len() as u64;

    let built = WorkloadConfig::recommender().build(N, SEED);
    let engine = KnnEngine::in_memory(config(), built.profiles).expect("engine");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: Some(0.01),
            max_iterations: None,
            idle_park: Duration::from_millis(1),
            repair: true,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    // Stream the churn while refinement runs.
    for (i, delta) in deltas.iter().enumerate() {
        service.submit_update(delta.clone()).expect("accepted");
        if i % 10 == 9 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Converged *after* absorbing all churn: every submitted delta
    // drained, and the latest snapshot is an exact post-churn
    // generation below the convergence threshold.
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let stats = service.stats();
        let snapshot = service.snapshot();
        if stats.updates_drained == total
            && !snapshot.repaired()
            && snapshot.changed_fraction() < 0.01
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never converged after churn (drained {}/{total}, repaired {}, change {:.4})",
            stats.updates_drained,
            snapshot.repaired(),
            snapshot.changed_fraction()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let final_snapshot = service.snapshot();
    let engine = refine.stop().expect("stop");
    // The served exact view is the engine's view.
    assert_eq!(
        final_snapshot.graph().as_ref(),
        engine.graph(),
        "served graph diverged from the engine"
    );

    // Quality floor on the *post-churn* world (same floor as the
    // offline recall regression for this workload).
    let final_profiles = engine.export_profiles().expect("export");
    let truth = brute_force_knn(&final_profiles, &built.measure, K, 4);
    let report = recall_at_k(engine.graph(), &truth);
    eprintln!(
        "churn recall: mean {:.4} min {:.4} ({} perfect / {} measured)",
        report.mean_recall, report.min_recall, report.perfect_users, report.users_measured
    );
    assert!(
        report.mean_recall >= 0.93,
        "mean recall@{K} under churn regressed to {:.4} (floor 0.93)",
        report.mean_recall
    );
    assert!(
        report.min_recall >= 0.80,
        "min recall@{K} under churn regressed to {:.4} (floor 0.80)",
        report.min_recall
    );
}
