//! Crash-recovery property suite: kill a multi-iteration run at every
//! storage-operation index, resume, finish the schedule, and require
//! **bit-identical** state against a never-crashed twin — on both
//! backends, with torn writes, under sharding, and for transient
//! fault storms the retry policy must absorb.
//!
//! The driver queues one profile update before each iteration (so
//! every kill point races an in-flight update against the durable
//! log), arms the fault plan only around `run_iteration` (queueing an
//! update is the application's own durable append, not part of the
//! iteration being killed), and resumes on the fault wrapper's inner
//! backend — the bytes that actually survived the "crash".

use std::collections::BTreeMap;
use std::sync::Arc;

use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::store::{
    DiskBackend, FaultBackend, FaultKind, FaultPlan, MemBackend, StorageBackend, StreamId,
};
use ooc_knn::{
    EngineConfig, ItemId, IterationReport, KnnEngine, Measure, ProfileDelta, ProfileStore,
    ShardedEngine, UserId,
};

const N: usize = 30;
const K: usize = 3;
const M: usize = 4;
const SEED: u64 = 11;
const ITERS: u64 = 3;

fn workload() -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(3)
            .with_ratings(8, 2),
    );
    store
}

fn config() -> EngineConfig {
    EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .measure(Measure::Cosine)
        // A resumed engine restarts phase-4 suppression from scratch,
        // so the twin must not carry in-process pruning state either —
        // report equality then holds iteration by iteration.
        .prune_pairs(false)
        .seed(SEED)
        .build()
        .expect("config")
}

/// The update queued before iteration `t` — a pure function of `t`, so
/// the crashed run and the twin schedule identical updates.
fn update_for(iteration: u64) -> ProfileDelta {
    ProfileDelta::set(
        UserId::new((iteration as u32 * 7) % N as u32),
        ItemId::new(5_000 + iteration as u32),
        1.5 + iteration as f32,
    )
}

/// Every committed stream at rest plus the update log, as raw bytes —
/// the bit-identical-state fingerprint. Tuple scratch (buckets, spill
/// runs, exchange runs) is re-derived every iteration and GC'd by
/// recovery, so it is not part of the durable contract.
fn stream_bytes(b: &dyn StorageBackend) -> BTreeMap<String, Vec<u8>> {
    let mut map = BTreeMap::new();
    for s in b.list().expect("list") {
        if s.is_tuple_scratch() {
            continue;
        }
        map.insert(s.to_string(), b.read(s).expect("read"));
    }
    map.insert("updates.log".into(), b.read_updates().expect("log"));
    map
}

/// A report with durations zeroed: everything else is deterministic
/// and must match across crash/resume boundaries.
fn deterministic(report: &IterationReport) -> IterationReport {
    IterationReport {
        phase_durations: Default::default(),
        ..report.clone()
    }
}

/// Runs the full 3-iteration schedule on a clean world.
fn run_clean(backend: Arc<dyn StorageBackend>) -> KnnEngine {
    let mut engine = KnnEngine::new_on(config(), workload(), backend).expect("clean build");
    while engine.iteration() < ITERS {
        engine
            .queue_update(&update_for(engine.iteration()))
            .expect("queue");
        engine.run_iteration().expect("clean iteration");
    }
    engine
}

/// Drives the schedule with the fault armed around each iteration.
/// `Err(())` means the fault fired mid-iteration (the "crash").
fn drive_faulted(fault: &FaultBackend, engine: &mut KnnEngine) -> Result<(), ()> {
    while engine.iteration() < ITERS {
        if engine.pending_updates().expect("pending") == 0 {
            engine
                .queue_update(&update_for(engine.iteration()))
                .expect("queue");
        }
        fault.arm();
        let result = engine.run_iteration();
        fault.disarm();
        if result.is_err() {
            return Err(());
        }
    }
    Ok(())
}

/// Reopens the survived bytes and finishes the schedule. The pending
/// check keeps the update schedule exact: a rollback preserves the
/// crashed iteration's queued update in the log; a commit that barely
/// survived consumed it.
fn resume_and_finish(backend: Arc<dyn StorageBackend>) -> KnnEngine {
    let mut engine = KnnEngine::resume_on(config(), backend).expect("resume");
    assert!(
        engine.recovery_report().is_some(),
        "protocol-on resume must report recovery"
    );
    while engine.iteration() < ITERS {
        if engine.pending_updates().expect("pending") == 0 {
            engine
                .queue_update(&update_for(engine.iteration()))
                .expect("queue");
        }
        engine.run_iteration().expect("post-resume iteration");
    }
    engine
}

/// The tentpole property: for every armed operation index `op` in the
/// schedule, kill there, resume, finish — and end bit-identical to the
/// never-crashed twin, reports included.
fn crash_at_every_op(make_backend: &dyn Fn() -> Arc<dyn StorageBackend>, kind: FaultKind) {
    let twin_backend = make_backend();
    let twin = run_clean(Arc::clone(&twin_backend));
    let twin_streams = stream_bytes(twin_backend.as_ref());
    let twin_reports: Vec<IterationReport> = twin.reports().iter().map(deterministic).collect();

    // Probe with an unreachable kill point to learn the schedule's
    // armed-operation count.
    let probe = Arc::new(FaultBackend::new(make_backend()));
    probe.set_plan(FaultPlan {
        fail_at: u64::MAX,
        kind,
        seed: SEED,
    });
    let mut engine = KnnEngine::new_on(
        config(),
        workload(),
        Arc::clone(&probe) as Arc<dyn StorageBackend>,
    )
    .expect("probe build");
    drive_faulted(&probe, &mut engine).expect("unreachable kill point must not fire");
    let total_ops = probe.ops_observed();
    assert!(total_ops > 0, "the schedule must perform armed operations");
    drop(engine);

    for op in 0..total_ops {
        let fault = Arc::new(FaultBackend::new(make_backend()));
        fault.set_plan(FaultPlan {
            fail_at: op,
            kind,
            seed: SEED ^ op,
        });
        let mut engine = KnnEngine::new_on(
            config(),
            workload(),
            Arc::clone(&fault) as Arc<dyn StorageBackend>,
        )
        .expect("faulted build");
        let outcome = drive_faulted(&fault, &mut engine);
        assert!(outcome.is_err(), "kill at op {op} never fired");
        assert!(fault.is_dead(), "kill at op {op} left the backend alive");
        // Reports of iterations that completed before the crash are
        // final — they must already match the twin.
        let mut reports: BTreeMap<u64, IterationReport> = engine
            .reports()
            .iter()
            .map(|r| (r.iteration, deterministic(r)))
            .collect();
        drop(engine);

        let survivor = Arc::clone(fault.inner());
        let finished = resume_and_finish(Arc::clone(&survivor));
        assert_eq!(
            finished.graph(),
            twin.graph(),
            "graph diverged after kill at op {op}"
        );
        assert_eq!(
            stream_bytes(survivor.as_ref()),
            twin_streams,
            "persisted bytes diverged after kill at op {op}"
        );
        for r in finished.reports() {
            reports.insert(r.iteration, deterministic(r));
        }
        // A kill inside the post-commit cleanup keeps the commit: that
        // iteration's report was lost with the "process" but its state
        // survived, so only require every *present* report to match.
        for (t, report) in &reports {
            assert_eq!(
                report, &twin_reports[*t as usize],
                "report of iteration {t} diverged after kill at op {op}"
            );
        }
        let scrub = finished.verify().expect("scrub");
        assert!(
            scrub.is_clean(),
            "scrub found issues after kill at op {op}: {scrub}"
        );
    }
}

#[test]
fn mem_backend_survives_a_crash_at_every_op() {
    crash_at_every_op(&|| Arc::new(MemBackend::new()), FaultKind::Crash);
}

#[test]
fn mem_backend_survives_a_torn_write_at_every_op() {
    crash_at_every_op(&|| Arc::new(MemBackend::new()), FaultKind::Torn);
}

#[test]
fn mem_backend_survives_enospc_at_every_op() {
    crash_at_every_op(&|| Arc::new(MemBackend::new()), FaultKind::Enospc);
}

#[test]
fn disk_backend_survives_a_crash_at_every_op() {
    let dirs: std::sync::Mutex<Vec<ooc_knn::WorkingDir>> = std::sync::Mutex::new(Vec::new());
    crash_at_every_op(
        &|| {
            let b = DiskBackend::temp("crash_disk").expect("tempdir");
            dirs.lock().unwrap().push(b.working_dir().unwrap().clone());
            Arc::new(b)
        },
        FaultKind::Crash,
    );
    for wd in dirs.into_inner().unwrap() {
        wd.destroy().expect("cleanup");
    }
}

#[test]
fn disk_backend_survives_a_torn_write_at_every_op() {
    let dirs: std::sync::Mutex<Vec<ooc_knn::WorkingDir>> = std::sync::Mutex::new(Vec::new());
    crash_at_every_op(
        &|| {
            let b = DiskBackend::temp("torn_disk").expect("tempdir");
            dirs.lock().unwrap().push(b.working_dir().unwrap().clone());
            Arc::new(b)
        },
        FaultKind::Torn,
    );
    for wd in dirs.into_inner().unwrap() {
        wd.destroy().expect("cleanup");
    }
}

/// The sharded leg: kill every armed op on each shard in turn; the
/// recovery must converge every shard to the common committed
/// generation through the router.
fn sharded_crash_at_every_op(num_shards: usize, kind: FaultKind) {
    let clean_shards: Vec<Arc<dyn StorageBackend>> = (0..num_shards)
        .map(|_| Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>)
        .collect();
    let mut twin =
        ShardedEngine::new_on(config(), workload(), clean_shards.clone()).expect("twin build");
    while twin.iteration() < ITERS {
        twin.queue_update(&update_for(twin.iteration())).unwrap();
        twin.run_iteration().expect("twin iteration");
    }
    let twin_streams: Vec<BTreeMap<String, Vec<u8>>> = clean_shards
        .iter()
        .map(|s| stream_bytes(s.as_ref()))
        .collect();

    for victim in 0..num_shards {
        // Probe the armed-op count on this shard.
        let probe = Arc::new(FaultBackend::new(
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>
        ));
        probe.set_plan(FaultPlan {
            fail_at: u64::MAX,
            kind,
            seed: SEED,
        });
        let shards: Vec<Arc<dyn StorageBackend>> = (0..num_shards)
            .map(|s| {
                if s == victim {
                    Arc::clone(&probe) as Arc<dyn StorageBackend>
                } else {
                    Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>
                }
            })
            .collect();
        let mut engine = ShardedEngine::new_on(config(), workload(), shards).expect("probe");
        while engine.iteration() < ITERS {
            engine
                .queue_update(&update_for(engine.iteration()))
                .unwrap();
            probe.arm();
            engine.run_iteration().expect("probe iteration");
            probe.disarm();
        }
        let total_ops = probe.ops_observed();
        assert!(total_ops > 0, "shard {victim} performed no armed ops");
        drop(engine);

        // Killing every single op on every shard would square the
        // runtime; a stride covers every phase of every iteration on
        // every shard while the single-backend tests above cover the
        // exhaustive enumeration.
        for op in (0..total_ops).step_by(7) {
            let fault = Arc::new(FaultBackend::new(
                Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>
            ));
            fault.set_plan(FaultPlan {
                fail_at: op,
                kind,
                seed: SEED ^ op,
            });
            let shards: Vec<Arc<dyn StorageBackend>> = (0..num_shards)
                .map(|s| {
                    if s == victim {
                        Arc::clone(&fault) as Arc<dyn StorageBackend>
                    } else {
                        Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>
                    }
                })
                .collect();
            let survivors: Vec<Arc<dyn StorageBackend>> = shards
                .iter()
                .enumerate()
                .map(|(s, b)| {
                    if s == victim {
                        Arc::clone(fault.inner())
                    } else {
                        Arc::clone(b)
                    }
                })
                .collect();
            let mut engine =
                ShardedEngine::new_on(config(), workload(), shards).expect("faulted build");
            let mut crashed = false;
            while engine.iteration() < ITERS {
                if engine.pending_updates().expect("pending") == 0 {
                    engine
                        .queue_update(&update_for(engine.iteration()))
                        .unwrap();
                }
                fault.arm();
                let result = engine.run_iteration();
                fault.disarm();
                if result.is_err() {
                    crashed = true;
                    break;
                }
            }
            assert!(crashed, "kill at shard {victim} op {op} never fired");
            drop(engine);

            let mut resumed =
                ShardedEngine::resume_on(config(), survivors.clone()).expect("sharded resume");
            assert!(resumed.recovery_report().is_some());
            while resumed.iteration() < ITERS {
                if resumed.pending_updates().expect("pending") == 0 {
                    resumed
                        .queue_update(&update_for(resumed.iteration()))
                        .unwrap();
                }
                resumed.run_iteration().expect("post-resume iteration");
            }
            assert_eq!(
                resumed.graph(),
                twin.graph(),
                "graph diverged after kill at shard {victim} op {op}"
            );
            for (s, survivor) in survivors.iter().enumerate() {
                assert_eq!(
                    stream_bytes(survivor.as_ref()),
                    twin_streams[s],
                    "shard {s} bytes diverged after kill at shard {victim} op {op}"
                );
            }
            let scrub = resumed.verify().expect("scrub");
            assert!(
                scrub.is_clean(),
                "scrub found issues after kill at shard {victim} op {op}: {scrub}"
            );
        }
    }
}

#[test]
fn one_shard_world_survives_crashes() {
    sharded_crash_at_every_op(1, FaultKind::Crash);
}

#[test]
fn two_shard_world_survives_crashes_on_either_shard() {
    sharded_crash_at_every_op(2, FaultKind::Crash);
}

#[test]
fn two_shard_world_survives_torn_writes() {
    sharded_crash_at_every_op(2, FaultKind::Torn);
}

/// Transient faults never crash the run: the engine's retry policy
/// absorbs them, the result is bit-identical to a fault-free twin, and
/// the retries surface on the iteration report.
#[test]
fn transient_fault_storms_are_absorbed_by_the_retry_policy() {
    let twin_backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let twin = run_clean(Arc::clone(&twin_backend));
    assert_eq!(
        twin.reports().iter().map(|r| r.retries()).sum::<u64>(),
        0,
        "a clean run must not retry"
    );

    for fail_at in [0u64, 3, 17, 100] {
        let fault = Arc::new(FaultBackend::new(
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>
        ));
        fault.set_plan(FaultPlan {
            fail_at,
            kind: FaultKind::Transient { times: 2 },
            seed: SEED,
        });
        let mut engine = KnnEngine::new_on(
            config(),
            workload(),
            Arc::clone(&fault) as Arc<dyn StorageBackend>,
        )
        .expect("build");
        drive_faulted(&fault, &mut engine).expect("transient faults must not kill the run");
        assert_eq!(engine.graph(), twin.graph(), "fail_at={fail_at}");
        assert_eq!(
            stream_bytes(fault.inner().as_ref()),
            stream_bytes(twin_backend.as_ref()),
            "fail_at={fail_at}"
        );
        assert_eq!(
            engine.io_snapshot().retries,
            2,
            "fail_at={fail_at}: both hiccups counted"
        );
    }
}

/// A pre-protocol working directory (no commit record, no staged
/// streams) resumes under the protocol untouched, and the first
/// committed iteration upgrades it in place.
#[test]
fn legacy_layout_resumes_under_the_protocol() {
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let legacy_config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .measure(Measure::Cosine)
        .prune_pairs(false)
        .commit_protocol(false)
        .seed(SEED)
        .build()
        .unwrap();
    let mut legacy =
        KnnEngine::new_on(legacy_config, workload(), Arc::clone(&backend)).expect("legacy build");
    legacy.queue_update(&update_for(0)).unwrap();
    legacy.run_iteration().expect("legacy iteration");
    legacy.queue_update(&update_for(1)).unwrap();
    legacy.run_iteration().expect("legacy iteration");
    let carried = legacy.graph().clone();
    drop(legacy);
    assert!(
        !backend.exists(StreamId::Commit),
        "protocol-off runs must not write commit records"
    );

    let mut resumed = KnnEngine::resume_on(config(), Arc::clone(&backend)).expect("resume");
    let recovery = resumed.recovery_report().expect("recovery ran").clone();
    assert_eq!(recovery.committed_generation, None, "legacy layout");
    assert!(!recovery.rolled_back);
    assert_eq!(resumed.graph(), &carried);
    assert_eq!(resumed.iteration(), 2);
    resumed.queue_update(&update_for(2)).unwrap();
    resumed.run_iteration().expect("upgraded iteration");
    assert!(
        backend.exists(StreamId::Commit),
        "the first protocol iteration writes the commit record"
    );
    let scrub = resumed.verify().expect("scrub");
    assert!(scrub.is_clean(), "{scrub}");

    // The upgraded run's answer equals a protocol-on twin's.
    let twin = run_clean(Arc::new(MemBackend::new()));
    assert_eq!(resumed.graph(), twin.graph());
}

/// Stale scratch and staged leftovers are GC'd on resume, and the
/// recovered listing matches a clean twin's exactly.
#[test]
fn resume_collects_stale_scratch_and_staged_streams() {
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut engine = KnnEngine::new_on(config(), workload(), Arc::clone(&backend)).unwrap();
    engine.run_iteration().unwrap();
    drop(engine);
    // Plant a stale spill run and an orphaned staged backup from a
    // "previous" epoch, as an interrupted iteration would leave them.
    backend
        .write(StreamId::TupleRun(0, 1, 9), b"stale spill")
        .unwrap();
    backend
        .write(
            StreamId::Staged(ooc_knn::store::CommitTarget::Meta, 0),
            b"orphan",
        )
        .unwrap();

    let resumed = KnnEngine::resume_on(config(), Arc::clone(&backend)).unwrap();
    let recovery = resumed.recovery_report().unwrap();
    assert!(recovery.scratch_deleted >= 1, "{recovery:?}");
    assert!(recovery.staged_deleted >= 1, "{recovery:?}");
    assert!(!backend.exists(StreamId::TupleRun(0, 1, 9)));
    assert!(!backend.exists(StreamId::Staged(ooc_knn::store::CommitTarget::Meta, 0)));
    drop(resumed);

    let twin_backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut twin = KnnEngine::new_on(config(), workload(), Arc::clone(&twin_backend)).unwrap();
    twin.run_iteration().unwrap();
    drop(twin);
    assert_eq!(
        stream_bytes(backend.as_ref()),
        stream_bytes(twin_backend.as_ref()),
        "recovered listing must match the clean twin"
    );
}

/// The scrub flags corruption and leftovers a healthy store must not
/// have.
#[test]
fn scrub_reports_corruption_and_leftovers() {
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut engine = KnnEngine::new_on(config(), workload(), Arc::clone(&backend)).unwrap();
    engine.run_iteration().unwrap();
    let clean = engine.verify().expect("scrub");
    assert!(clean.is_clean(), "{clean}");
    assert!(clean.streams_checked > 10);

    // Corrupt a profile stream's framing and plant a staged leftover;
    // the scrub must surface both without erroring out.
    backend
        .write_raw(StreamId::Profiles(0), b"not a valid frame")
        .unwrap();
    backend
        .write(
            StreamId::Staged(ooc_knn::store::CommitTarget::Assignment, 3),
            b"x",
        )
        .unwrap();
    let report = engine.verify().expect("scrub");
    assert!(!report.is_clean(), "{report}");
    assert!(report.issues.len() >= 2, "{report}");
}
