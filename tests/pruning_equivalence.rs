//! The phase-4 pruning acceptance bar.
//!
//! Cross-iteration pair suppression and bound-based candidate
//! filtering are *exact* optimizations: they skip kernel evaluations
//! whose outcome is already decided, never evaluations that could
//! matter. This suite pins that claim at the engine level:
//!
//! * a pruned engine and an unpruned engine over the same seeded
//!   workload produce **identical graphs after every iteration** — on
//!   both backends, with profile updates landing mid-run;
//! * run independently to convergence, both land on the same final
//!   graph after the same number of iterations;
//! * the pruned run actually prunes (the counters are non-trivial in
//!   steady state) while `sims_computed + sims_skipped + sims_pruned`
//!   equals the unpruned run's `sims_computed` once the tuple sets
//!   coincide.

use std::sync::Arc;

use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::{
    DiskBackend, EngineConfig, ItemId, KnnEngine, Measure, MemBackend, Profile, ProfileDelta,
    ProfileStore, StorageBackend, UserId,
};

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    store
}

fn config(n: usize, seed: u64, prune: bool) -> EngineConfig {
    EngineConfig::builder(n)
        .k(4)
        .num_partitions(6)
        .measure(Measure::Cosine)
        .seed(seed)
        .threads(2)
        .prune_pairs(prune)
        .bound_filter(prune)
        .build()
        .expect("config")
}

/// Pruned vs. unpruned engines in lockstep for 4 iterations on both
/// backends, with the same profile updates queued mid-run: identical
/// graphs at every step, and the pruned run's funnel accounts for
/// every tuple.
#[test]
fn pruned_and_unpruned_graphs_are_identical_every_iteration() {
    let n = 72;
    let seed = 29;

    for disk in [false, true] {
        let make_backend = || -> Arc<dyn StorageBackend> {
            if disk {
                Arc::new(DiskBackend::temp("pruning_equivalence").expect("disk backend"))
            } else {
                Arc::new(MemBackend::new())
            }
        };
        let mut pruned =
            KnnEngine::new_on(config(n, seed, true), workload(n, seed), make_backend())
                .expect("pruned engine");
        let mut plain =
            KnnEngine::new_on(config(n, seed, false), workload(n, seed), make_backend())
                .expect("unpruned engine");

        let mut total_skipped = 0u64;
        for iteration in 0..4u32 {
            if iteration == 2 {
                for engine in [&mut pruned, &mut plain] {
                    engine
                        .queue_update(&ProfileDelta::set(UserId::new(3), ItemId::new(900), 4.0))
                        .expect("update");
                    engine
                        .queue_update(&ProfileDelta::replace(
                            UserId::new(11),
                            Profile::from_unsorted_pairs(vec![(1, 2.0), (7, 1.0)])
                                .expect("profile"),
                        ))
                        .expect("update");
                }
            }
            let rp = pruned.run_iteration().expect("pruned iteration");
            let ru = plain.run_iteration().expect("unpruned iteration");
            assert_eq!(
                pruned.graph(),
                plain.graph(),
                "backend={} iteration {iteration}: pruning changed the graph",
                if disk { "disk" } else { "mem" }
            );
            // Same tuple sets (identical graphs all along), so the
            // pruned funnel must account for exactly the unpruned
            // evaluation count.
            assert_eq!(
                rp.sims_computed + rp.sims_skipped + rp.sims_pruned,
                ru.sims_computed,
                "iteration {iteration}: funnel does not cover the tuple set"
            );
            assert_eq!(ru.sims_skipped, 0, "unpruned run must not skip");
            assert_eq!(ru.sims_pruned, 0, "unpruned run must not prune");
            assert_eq!(ru.accums_seeded, 0, "unpruned run must not seed");
            if iteration == 0 {
                // No prior iteration: nothing to skip or seed. (The
                // bound filter may already prune — thresholds form as
                // the first iteration's accumulators fill.)
                assert_eq!(rp.sims_skipped, 0, "nothing skippable at iteration 0");
                assert_eq!(rp.accums_seeded, 0, "nothing seedable at iteration 0");
            }
            total_skipped += rp.sims_skipped;
        }
        assert!(
            total_skipped > 0,
            "backend={}: suppression never fired across 4 iterations",
            if disk { "disk" } else { "mem" }
        );

        for engine in [pruned, plain] {
            if let Some(wd) = engine.working_dir().cloned() {
                drop(engine);
                wd.destroy().expect("cleanup");
            }
        }
    }
}

/// Independent runs to convergence: the pruned engine takes the same
/// number of iterations and lands on the same converged graph as the
/// unpruned one, while doing strictly less kernel work in steady
/// state.
#[test]
fn converged_graph_matches_the_unpruned_run() {
    let n = 96;
    let seed = 41;
    let mut outcomes = Vec::new();
    for prune in [true, false] {
        let mut engine = KnnEngine::new_on(
            config(n, seed, prune),
            workload(n, seed),
            Arc::new(MemBackend::new()),
        )
        .expect("engine");
        let outcome = engine.run_until_converged(0.01, 25).expect("convergence");
        assert!(outcome.converged, "prune={prune} did not converge");
        let steady_computed: u64 = engine
            .reports()
            .iter()
            .skip(1)
            .map(|r| r.sims_computed)
            .sum();
        outcomes.push((
            outcome.iterations_run,
            engine.graph().clone(),
            steady_computed,
        ));
    }
    let (pruned_iters, pruned_graph, pruned_work) = &outcomes[0];
    let (plain_iters, plain_graph, plain_work) = &outcomes[1];
    assert_eq!(pruned_iters, plain_iters, "iteration counts diverged");
    assert_eq!(pruned_graph, plain_graph, "converged graphs diverged");
    assert!(
        pruned_work < plain_work,
        "pruning saved no steady-state work ({pruned_work} vs {plain_work})"
    );
}

/// The `KNN_TEST_PRUNE` escape hatch semantics the CI no-prune job
/// relies on: explicit builder toggles always beat the environment
/// default, so this suite means the same thing under any setting.
#[test]
fn explicit_toggles_override_environment() {
    let on = config(50, 1, true);
    let off = config(50, 1, false);
    assert!(on.prune_pairs() && on.bound_filter());
    assert!(!off.prune_pairs() && !off.bound_filter());
}
