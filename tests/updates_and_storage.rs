//! Integration tests for the lazy-update semantics (phase 5), the
//! naive baseline's I/O penalty, and storage failure behaviour.

use ooc_knn::baseline::naive_out_of_core_iteration;
use ooc_knn::core::partition::Partitioning;
use ooc_knn::core::phase1::reshard_profiles;
use ooc_knn::core::reference::reference_iteration;
use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::sim::DeltaOp;
use ooc_knn::store::StorageBackend;
use ooc_knn::{
    EngineConfig, EngineError, ItemId, KnnEngine, KnnGraph, Measure, Profile, ProfileDelta,
    ProfileStore, UserId, WorkingDir,
};

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(12, 2),
    );
    store
}

#[test]
fn queued_updates_take_effect_exactly_one_iteration_later() {
    let n = 60;
    let profiles = workload(n, 1);
    let g0 = KnnGraph::random_init(n, 4, 1);

    // Expected trajectory computed in memory: iteration 0 sees the
    // original profiles; iterations 1+ see the patched ones.
    let mut patched = profiles.clone();
    patched.set(
        UserId::new(3),
        Profile::from_unsorted_pairs(vec![(5000, 4.0)]).unwrap(),
    );
    let expected_iter0 = reference_iteration(&g0, &profiles, &Measure::Cosine, 4, false);
    let expected_iter1 = reference_iteration(&expected_iter0, &patched, &Measure::Cosine, 4, false);

    let config = EngineConfig::builder(n)
        .k(4)
        .num_partitions(4)
        .measure(Measure::Cosine)
        .seed(1)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_updates").unwrap();
    let mut engine = KnnEngine::with_initial_graph(config, g0, profiles, wd).unwrap();
    engine
        .queue_update(&ProfileDelta::replace(
            UserId::new(3),
            Profile::from_unsorted_pairs(vec![(5000, 4.0)]).unwrap(),
        ))
        .unwrap();
    engine.run_iteration().unwrap();
    assert_eq!(engine.graph(), &expected_iter0, "update visible too early");
    engine.run_iteration().unwrap();
    assert_eq!(
        engine.graph(),
        &expected_iter1,
        "update not applied after boundary"
    );
    engine.into_working_dir().destroy().unwrap();
}

#[test]
fn update_stream_across_iterations_applies_in_order() {
    let n = 40;
    let profiles = workload(n, 2);
    let config = EngineConfig::builder(n)
        .k(3)
        .num_partitions(4)
        .seed(2)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_update_stream").unwrap();
    let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
    let u = UserId::new(7);
    engine
        .queue_update(&ProfileDelta::set(u, ItemId::new(42), 1.0))
        .unwrap();
    engine
        .queue_update(&ProfileDelta::set(u, ItemId::new(42), 2.0))
        .unwrap();
    engine.run_iteration().unwrap();
    assert_eq!(
        engine.profile_of(u).unwrap().get(ItemId::new(42)),
        Some(2.0)
    );
    engine
        .queue_update(&ProfileDelta::remove(u, ItemId::new(42)))
        .unwrap();
    engine
        .queue_update(&ProfileDelta::new(u, DeltaOp::Set(ItemId::new(43), 9.0)))
        .unwrap();
    engine.run_iteration().unwrap();
    let p = engine.profile_of(u).unwrap();
    assert_eq!(p.get(ItemId::new(42)), None);
    assert_eq!(p.get(ItemId::new(43)), Some(9.0));
    engine.into_working_dir().destroy().unwrap();
}

#[test]
fn invalid_updates_are_rejected_without_corrupting_the_queue() {
    let n = 20;
    let profiles = workload(n, 3);
    let config = EngineConfig::builder(n)
        .k(3)
        .num_partitions(2)
        .seed(3)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_bad_updates").unwrap();
    let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
    assert!(matches!(
        engine.queue_update(&ProfileDelta::set(UserId::new(999), ItemId::new(0), 1.0)),
        Err(EngineError::InvalidUpdate { .. })
    ));
    assert!(matches!(
        engine.queue_update(&ProfileDelta::set(UserId::new(0), ItemId::new(0), f32::NAN)),
        Err(EngineError::InvalidUpdate { .. })
    ));
    // The engine still runs and applies nothing.
    let report = engine.run_iteration().unwrap();
    assert_eq!(report.updates_applied, 0);
    engine.into_working_dir().destroy().unwrap();
}

#[test]
fn naive_baseline_same_answer_far_more_io() {
    let n = 80;
    let profiles = workload(n, 4);
    let g0 = KnnGraph::random_init(n, 4, 4);
    let m = 8;

    // Engine run.
    let config = EngineConfig::builder(n)
        .k(4)
        .num_partitions(m)
        .measure(Measure::Cosine)
        .seed(4)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_naive_engine").unwrap();
    let mut engine =
        KnnEngine::with_initial_graph(config, g0.clone(), profiles.clone(), wd).unwrap();
    let report = engine.run_iteration().unwrap();
    let engine_graph = engine.graph().clone();
    let engine_ops = report.cache.total_ops();
    engine.into_working_dir().destroy().unwrap();

    // Naive random-access run over the same layout (storage backend
    // agnostic — run it on the disk backend, like the paper's setting).
    let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
    let partitioning = Partitioning::from_assignment(assignment, m).unwrap();
    let backend = ooc_knn::store::DiskBackend::temp("itest_naive").unwrap();
    reshard_profiles(&backend, None, &partitioning, Some(&profiles), 1).unwrap();
    let naive =
        naive_out_of_core_iteration(&g0, &partitioning, &backend, &Measure::Cosine, 4, 2).unwrap();
    assert_eq!(naive.graph, engine_graph, "both paths must agree on G(t+1)");
    assert!(
        naive.cache.total_ops() > 3 * engine_ops,
        "naive ops {} should dwarf engine ops {engine_ops}",
        naive.cache.total_ops()
    );
    backend.working_dir().unwrap().clone().destroy().unwrap();
}

#[test]
fn corrupt_partition_file_surfaces_a_typed_error() {
    let n = 30;
    let profiles = workload(n, 5);
    let config = EngineConfig::builder(n)
        .k(3)
        .num_partitions(3)
        .seed(5)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_corrupt").unwrap();
    let mut engine = KnnEngine::new(config, profiles, wd).unwrap();
    engine.run_iteration().unwrap();
    // Truncate one profile partition file behind the engine's back.
    let victim = engine.working_dir().expect("disk-backed").profiles_path(1);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let err = engine.run_iteration().unwrap_err();
    assert!(matches!(err, EngineError::Store(_)), "got {err:?}");
    engine.into_working_dir().destroy().unwrap();
}

#[test]
fn working_dir_state_survives_engine_restart() {
    // The profile files and update log persist: a new engine over the
    // same directory (warm start from the old graph) continues where
    // the previous one stopped.
    let n = 50;
    let profiles = workload(n, 6);
    let config = EngineConfig::builder(n)
        .k(4)
        .num_partitions(5)
        .measure(Measure::Cosine)
        .seed(6)
        .build()
        .unwrap();
    let wd = WorkingDir::temp("itest_restart").unwrap();
    let root = wd.root().to_path_buf();
    let mut engine = KnnEngine::new(config.clone(), profiles.clone(), wd).unwrap();
    engine.run_iteration().unwrap();
    let g1 = engine.graph().clone();
    drop(engine);

    // Restart: same config/seed, warm graph, fresh engine over the
    // existing directory (profiles are re-sharded identically).
    let wd = WorkingDir::create(&root).unwrap();
    let mut engine =
        KnnEngine::with_initial_graph(config, g1.clone(), profiles.clone(), wd).unwrap();
    engine.run_iteration().unwrap();
    let expected = reference_iteration(&g1, &profiles, &Measure::Cosine, 4, false);
    assert_eq!(engine.graph(), &expected);
    engine.into_working_dir().destroy().unwrap();
}
