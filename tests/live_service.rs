//! Integration test mirroring `examples/live_service.rs`: the facade's
//! serve layer answers queries mid-refinement, applies a streamed
//! update, and hands the engine back intact.

use std::time::{Duration, Instant};

use ooc_knn::serve::{spawn, RefineOptions};
use ooc_knn::sim::{ItemId, Profile, ProfileDelta};
use ooc_knn::{EngineConfig, KnnEngine, UserId, WorkingDir, WorkloadConfig};

#[test]
fn live_service_round_trip() {
    let n = 300;
    let workload = WorkloadConfig::recommender().build(n, 11);
    let config = EngineConfig::builder(n)
        .k(6)
        .num_partitions(4)
        .measure(workload.measure)
        .seed(11)
        .build()
        .expect("config");
    let engine = KnnEngine::new(
        config,
        workload.profiles,
        WorkingDir::temp("live_test").expect("wd"),
    )
    .expect("engine");

    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: Some(0.02),
            max_iterations: Some(10),
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    // Served immediately, before any iteration completes: G(0).
    let me = UserId::new(0);
    assert_eq!(service.neighbors(me).expect("known user").len(), 6);

    // Stream an update and let refinement surface it.
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(9_999), 5.0);
    service
        .submit_update(ProfileDelta::replace(UserId::new(7), fresh.clone()))
        .expect("valid update");

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snapshot = service.snapshot();
        if snapshot.profiles().get(UserId::new(7)) == &fresh {
            assert!(
                snapshot.epoch() > 0,
                "update cannot be in the initial snapshot"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "update never surfaced in a snapshot"
        );
        refine.wait_for_epoch(snapshot.epoch() + 1, Duration::from_secs(120));
    }

    // Queries keep answering from consistent snapshots meanwhile.
    let batch = service
        .neighbors_many(&[UserId::new(1), UserId::new(2), UserId::new(3)])
        .expect("known users");
    assert!(batch.results.iter().all(|l| l.len() == 6));
    assert_eq!(batch.generation, service.snapshot().generation());
    assert!(
        service.neighbors(UserId::new(300)).is_err(),
        "out of range must fail"
    );

    let ad_hoc = service
        .query_profile(service.snapshot().profiles().get(me), 4)
        .expect("finite query");
    assert_eq!(ad_hoc.len(), 4);
    assert_eq!(
        ad_hoc[0].id, me,
        "a user's own profile matches itself first"
    );

    // Recover the engine: its state matches the final snapshot.
    let final_snapshot = service.snapshot();
    let engine = refine.stop().expect("stop");
    assert!(engine.iteration() >= final_snapshot.iteration());
    assert_eq!(
        engine
            .export_profiles()
            .expect("export")
            .get(UserId::new(7)),
        &fresh
    );
    engine.into_working_dir().destroy().expect("cleanup");
}
