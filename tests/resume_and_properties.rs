//! Integration tests for engine persistence/resume and randomized
//! engine-vs-reference equivalence.

use ooc_knn::core::reference::reference_run;
use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::{
    EngineConfig, EngineError, ItemId, KnnEngine, KnnGraph, Measure, ProfileDelta, ProfileStore,
    UserId, WorkingDir,
};
use proptest::prelude::*;

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    store
}

fn config(n: usize, k: usize, m: usize, seed: u64) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(Measure::Cosine)
        .seed(seed)
        .build()
        .expect("config")
}

#[test]
fn resume_continues_exactly_where_the_run_stopped() {
    let n = 70;
    let profiles = workload(n, 2);
    let g0 = KnnGraph::random_init(n, 4, 2);
    let expected = reference_run(&g0, &profiles, &Measure::Cosine, 4, false, 3);

    // Run 2 iterations, drop the engine (process "crash"), resume,
    // run the third.
    let cfg = config(n, 4, 5, 2);
    let wd = WorkingDir::temp("resume_basic").unwrap();
    let root = wd.root().to_path_buf();
    let mut engine = KnnEngine::with_initial_graph(cfg.clone(), g0, profiles, wd).unwrap();
    engine.run_iteration().unwrap();
    engine.run_iteration().unwrap();
    let before = engine.graph().clone();
    drop(engine);

    let wd = WorkingDir::create(&root).unwrap();
    let mut resumed = KnnEngine::resume(cfg, wd).unwrap();
    assert_eq!(resumed.iteration(), 2);
    assert_eq!(resumed.graph(), &before, "graph must survive the restart");
    resumed.run_iteration().unwrap();
    assert_eq!(resumed.graph(), &expected);
    resumed.into_working_dir().destroy().unwrap();
}

#[test]
fn resume_preserves_pending_updates() {
    let n = 40;
    let profiles = workload(n, 3);
    let cfg = config(n, 3, 4, 3);
    let wd = WorkingDir::temp("resume_updates").unwrap();
    let root = wd.root().to_path_buf();
    let mut engine = KnnEngine::new(cfg.clone(), profiles, wd).unwrap();
    engine.run_iteration().unwrap();
    engine
        .queue_update(&ProfileDelta::set(UserId::new(5), ItemId::new(777), 3.0))
        .unwrap();
    drop(engine); // crash with a queued, unapplied update

    let wd = WorkingDir::create(&root).unwrap();
    let mut resumed = KnnEngine::resume(cfg, wd).unwrap();
    let report = resumed.run_iteration().unwrap();
    assert_eq!(
        report.updates_applied, 1,
        "queued update must survive the crash"
    );
    assert_eq!(
        resumed
            .profile_of(UserId::new(5))
            .unwrap()
            .get(ItemId::new(777)),
        Some(3.0)
    );
    resumed.into_working_dir().destroy().unwrap();
}

#[test]
fn resume_rejects_mismatched_config() {
    let n = 30;
    let profiles = workload(n, 4);
    let cfg = config(n, 3, 3, 4);
    let wd = WorkingDir::temp("resume_mismatch").unwrap();
    let root = wd.root().to_path_buf();
    let engine = KnnEngine::new(cfg.clone(), profiles, wd).unwrap();
    drop(engine);

    for bad in [
        config(n, 4, 3, 4),  // wrong k
        config(n, 3, 5, 4),  // wrong m
        config(n, 3, 3, 99), // wrong seed
    ] {
        let wd = WorkingDir::create(&root).unwrap();
        assert!(matches!(
            KnnEngine::resume(bad, wd),
            Err(EngineError::InputMismatch { .. })
        ));
    }
    WorkingDir::create(&root).unwrap().destroy().unwrap();
}

#[test]
fn resume_from_empty_directory_is_a_storage_error() {
    let wd = WorkingDir::temp("resume_empty").unwrap();
    assert!(matches!(
        KnnEngine::resume(config(10, 2, 2, 0), wd),
        Err(EngineError::Store(_))
    ));
}

#[test]
fn resume_before_any_iteration_reproduces_g0() {
    let n = 25;
    let profiles = workload(n, 6);
    let cfg = config(n, 3, 3, 6);
    let wd = WorkingDir::temp("resume_g0").unwrap();
    let root = wd.root().to_path_buf();
    let engine = KnnEngine::new(cfg.clone(), profiles, wd).unwrap();
    let g0 = engine.graph().clone();
    drop(engine);
    let resumed = KnnEngine::resume(cfg, WorkingDir::create(&root).unwrap()).unwrap();
    assert_eq!(resumed.iteration(), 0);
    assert_eq!(resumed.graph(), &g0);
    resumed.into_working_dir().destroy().unwrap();
}

proptest! {
    // Persistence round-trip against BOTH storage backends: build an
    // engine, run 1–3 iterations with updates queued mid-run, leave
    // more updates pending, reopen via `resume`, and require graph,
    // partitioning, iteration counter, and pending-update count to be
    // identical — plus the two backends agreeing with each other.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn persistence_round_trips_on_every_backend(
        n in 20usize..60,
        k in 1usize..5,
        m in 1usize..7,
        seed in 0u64..1000,
        iters in 1usize..4,
        pending in 0usize..4,
    ) {
        use ooc_knn::store::{DiskBackend, MemBackend, StorageBackend};
        use std::sync::Arc;

        let m = m.min(n);
        let mut final_graphs = Vec::new();
        let disk: Arc<dyn StorageBackend> =
            Arc::new(DiskBackend::temp("prop_roundtrip").unwrap());
        let disk_wd = disk.working_dir().unwrap().clone();
        let mem: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        for backend in [disk, mem] {
            let cfg = config(n, k, m, seed);
            let mut engine = KnnEngine::new_on(
                cfg.clone(),
                workload(n, seed),
                Arc::clone(&backend),
            ).unwrap();
            for i in 0..iters {
                // An update queued mid-run exercises phase 5 before
                // the crash point.
                engine.queue_update(&ProfileDelta::set(
                    UserId::new((i % n) as u32),
                    ItemId::new(10_000 + i as u32),
                    1.0 + i as f32,
                )).unwrap();
                engine.run_iteration().unwrap();
            }
            // Updates still pending when the process "dies".
            for j in 0..pending {
                engine.queue_update(&ProfileDelta::set(
                    UserId::new((j % n) as u32),
                    ItemId::new(20_000 + j as u32),
                    2.0,
                )).unwrap();
            }
            let graph = engine.graph().clone();
            let assignment = engine.partitioning().assignment().to_vec();
            drop(engine);

            let resumed = KnnEngine::resume_on(cfg, backend).unwrap();
            prop_assert_eq!(resumed.iteration(), iters as u64);
            prop_assert_eq!(resumed.graph(), &graph);
            prop_assert_eq!(resumed.partitioning().assignment(), &assignment[..]);
            prop_assert_eq!(resumed.pending_updates().unwrap(), pending);
            final_graphs.push(graph);
        }
        prop_assert_eq!(&final_graphs[0], &final_graphs[1],
            "disk and mem engines must agree");
        disk_wd.destroy().unwrap();
    }
}

proptest! {
    // Randomized worlds: the out-of-core engine must equal the
    // in-memory reference transition for arbitrary (n, k, m, seed).
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn engine_equals_reference_on_random_worlds(
        n in 20usize..80,
        k in 1usize..6,
        m in 1usize..9,
        seed in 0u64..1000,
        reverse in proptest::bool::ANY,
    ) {
        let m = m.min(n);
        let profiles = workload(n, seed);
        let g0 = KnnGraph::random_init(n, k, seed);
        let expected = reference_run(&g0, &profiles, &Measure::Cosine, k, reverse, 2);
        let cfg = EngineConfig::builder(n)
            .k(k)
            .num_partitions(m)
            .measure(Measure::Cosine)
            .include_reverse(reverse)
            .seed(seed)
            .build()
            .expect("config");
        let wd = WorkingDir::temp("prop_engine").unwrap();
        let mut engine = KnnEngine::with_initial_graph(cfg, g0, profiles, wd).unwrap();
        engine.run_iteration().unwrap();
        engine.run_iteration().unwrap();
        prop_assert_eq!(engine.graph(), &expected);
        engine.into_working_dir().destroy().unwrap();
    }
}
