//! The partition-parallel acceptance bar: for the same seeded
//! workload, the engine produces **the same computation** at every
//! thread count on every backend — identical `KnnGraph`s after every
//! iteration, identical deterministic `IterationReport` fields,
//! identical `IoStats` totals, and byte-identical persisted streams.
//! This extends `backend_equivalence.rs` across the thread axis: six
//! engines (threads ∈ {1, 2, 4} × {mem, disk}) run in lockstep and
//! must be indistinguishable in everything but wall-clock time.

use std::sync::Arc;

use ooc_knn::core::metrics::IterationReport;
use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::store::backend::StreamId;
use ooc_knn::store::IoSnapshot;
use ooc_knn::{
    DiskBackend, EngineConfig, ItemId, KnnEngine, KnnGraph, Measure, MemBackend, Profile,
    ProfileDelta, ProfileStore, StorageBackend, UserId,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    store
}

fn config(n: usize, k: usize, m: usize, seed: u64, threads: usize) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .measure(Measure::Cosine)
        .seed(seed)
        .threads(threads)
        // A small spill threshold keeps the parallel spill/merge path
        // honest, not just the in-memory staging fast path — and a
        // small per-table byte budget exercises the budget-spill path
        // (per-table by definition, so it must be thread-invariant).
        .spill_threshold(64)
        .tuple_table_memory(Some(1024))
        .build()
        .expect("config")
}

/// The deterministic projection of a report: everything except
/// wall-clock durations (and the phase-duration-bearing fields),
/// which legitimately differ run to run. The scoring-funnel counters
/// (`sims_skipped`, `sims_pruned`, `accums_seeded`) are part of the
/// determinism contract: suppression and bound decisions are taken on
/// the driving thread against bucket-start state, so they must not
/// depend on thread count or backend either. The spill counters
/// (`bytes_spilled`, `spill_runs`, `merge_passes`) are pinned the same
/// way: spilling is per scan table and the merge is per bucket, so
/// the traffic is a pure function of the workload (`phase_io` pins the
/// same meters again at the IoSnapshot level).
fn deterministic_fields(r: &IterationReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.iteration,
        r.phase_io,
        r.cache,
        r.predicted,
        r.tuples,
        r.schedule_len,
        (r.sims_computed, r.sims_skipped, r.sims_pruned),
        r.accums_seeded,
        (r.bytes_spilled, r.spill_runs, r.merge_passes),
        r.updates_applied,
        // Partition locality (replication cost, intra-partition tuple
        // count) is a function of the partitioning and the tuple set
        // alone — thread- and shard-invariant like the rest.
        (r.replication_cost, r.intra_partition_tuples),
        r.changed_fraction.to_bits(),
    )
}

/// Reads every stream the backend holds, sorted by stream id, as the
/// backend returns it (unframed payload bytes).
fn all_stream_bytes(b: &dyn StorageBackend) -> Vec<(StreamId, Vec<u8>)> {
    let mut streams: Vec<(StreamId, Vec<u8>)> = b
        .list()
        .expect("list")
        .into_iter()
        .map(|s| (s, b.read(s).expect("read")))
        .collect();
    streams.sort_by_key(|&(s, _)| s);
    streams
}

/// Threads {1, 2, 4} × backends {mem, disk}: six engines over the
/// same seeded workload (updates queued mid-run on all of them) stay
/// bit-for-bit in lockstep for 3 iterations.
#[test]
fn thread_count_and_backend_never_change_the_computation() {
    let n = 72;
    let (k, m, seed) = (4, 6, 23);
    let g0 = KnnGraph::random_init(n, k, seed);

    let mut engines: Vec<(String, Arc<dyn StorageBackend>, KnnEngine)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        for disk in [false, true] {
            let backend: Arc<dyn StorageBackend> = if disk {
                Arc::new(DiskBackend::temp("parallel_equivalence").expect("disk backend"))
            } else {
                Arc::new(MemBackend::new())
            };
            let engine = KnnEngine::with_initial_graph_on(
                config(n, k, m, seed, threads),
                g0.clone(),
                workload(n, seed),
                Arc::clone(&backend),
            )
            .expect("engine");
            engines.push((
                format!("threads={threads} backend={}", backend.name()),
                backend,
                engine,
            ));
        }
    }

    for iteration in 0..3u32 {
        if iteration == 1 {
            // The same updates land on every engine mid-run.
            for (_, _, engine) in &mut engines {
                engine
                    .queue_update(&ProfileDelta::set(UserId::new(5), ItemId::new(801), 3.5))
                    .expect("update");
                engine
                    .queue_update(&ProfileDelta::replace(
                        UserId::new(17),
                        Profile::from_unsorted_pairs(vec![(3, 1.0), (8, 2.0)]).expect("profile"),
                    ))
                    .expect("update");
            }
        }
        let reports: Vec<IterationReport> = engines
            .iter_mut()
            .map(|(_, _, e)| e.run_iteration().expect("iteration"))
            .collect();
        assert!(
            reports[0].bytes_spilled > 0 && reports[0].merge_passes > 0,
            "iteration {iteration}: the spill/merge path was not exercised"
        );

        let (ref_label, _, ref_engine) = &engines[0];
        for (idx, (label, _, engine)) in engines.iter().enumerate().skip(1) {
            assert_eq!(
                ref_engine.graph(),
                engine.graph(),
                "iteration {iteration}: graph of [{label}] diverged from [{ref_label}]"
            );
            assert_eq!(
                deterministic_fields(&reports[0]),
                deterministic_fields(&reports[idx]),
                "iteration {iteration}: report of [{label}] diverged from [{ref_label}]"
            );
        }
    }

    // Byte-for-byte: the full persisted stream set of every engine
    // matches the reference engine's.
    let reference = all_stream_bytes(engines[0].1.as_ref());
    assert!(
        reference.len() > 2 * m,
        "reference run persisted suspiciously few streams"
    );
    for (label, backend, _) in engines.iter().skip(1) {
        assert_eq!(
            reference,
            all_stream_bytes(backend.as_ref()),
            "persisted streams of [{label}] diverged"
        );
    }

    // Satellite 6's assertion: the parallel runs' I/O totals equal the
    // sequential run's, counter by counter, on both backends — the
    // atomic meter neither loses nor invents operations under
    // concurrency.
    let reference_io: IoSnapshot = engines[0].1.stats().snapshot();
    for (label, backend, _) in engines.iter().skip(1) {
        assert_eq!(
            reference_io,
            backend.stats().snapshot(),
            "IoStats of [{label}] diverged"
        );
    }

    // Cleanup the disk-backed working directories.
    for (_, backend, engine) in engines {
        let wd = backend.working_dir().cloned();
        drop(engine);
        if let Some(wd) = wd {
            wd.destroy().expect("cleanup");
        }
    }
}

/// The same claim under convergence pressure: running each engine
/// independently to convergence (not in lockstep) still lands on the
/// same iteration count and the same final graph.
#[test]
fn independent_runs_to_convergence_agree_across_thread_counts() {
    let n = 64;
    let (k, m, seed) = (4, 4, 31);
    let mut reference: Option<(usize, KnnGraph)> = None;
    for &threads in &THREAD_COUNTS {
        let mut engine = KnnEngine::new_on(
            config(n, k, m, seed, threads),
            workload(n, seed),
            Arc::new(MemBackend::new()),
        )
        .expect("engine");
        let outcome = engine.run_until_converged(0.02, 12).expect("convergence");
        match &reference {
            None => reference = Some((outcome.iterations_run, engine.graph().clone())),
            Some((ref_iters, ref_graph)) => {
                assert_eq!(ref_iters, &outcome.iterations_run, "threads={threads}");
                assert_eq!(ref_graph, engine.graph(), "threads={threads}");
            }
        }
    }
}
