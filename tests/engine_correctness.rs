//! Cross-crate integration tests: the out-of-core engine against its
//! in-memory references, across every axis that must not change the
//! result.

use ooc_knn::core::reference::{reference_iteration, reference_run};
use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::{
    brute_force_knn, recall_at_k, EngineConfig, Heuristic, KnnEngine, KnnGraph, Measure,
    PartitionerKind, ProfileStore, WorkingDir,
};

fn workload(n: usize, seed: u64) -> ProfileStore {
    let (store, _) = clustered_profiles(
        ClusteredConfig::new(n, seed)
            .with_clusters(5)
            .with_ratings(15, 3),
    );
    store
}

fn run_engine(
    n: usize,
    k: usize,
    seed: u64,
    iterations: usize,
    mutate: impl FnOnce(ooc_knn::core::EngineConfigBuilder) -> ooc_knn::core::EngineConfigBuilder,
) -> KnnGraph {
    let profiles = workload(n, seed);
    let g0 = KnnGraph::random_init(n, k, seed);
    let config = mutate(
        EngineConfig::builder(n)
            .k(k)
            .measure(Measure::Cosine)
            .seed(seed),
    )
    .build()
    .expect("config");
    let wd = WorkingDir::temp("itest_engine").expect("workdir");
    let mut engine = KnnEngine::with_initial_graph(config, g0, profiles, wd).expect("engine");
    for _ in 0..iterations {
        engine.run_iteration().expect("iteration");
    }
    let result = engine.graph().clone();
    engine.into_working_dir().destroy().expect("cleanup");
    result
}

#[test]
fn engine_transition_equals_reference_transition() {
    let n = 120;
    let profiles = workload(n, 3);
    let g0 = KnnGraph::random_init(n, 6, 3);
    let expected = reference_run(&g0, &profiles, &Measure::Cosine, 6, false, 2);
    let got = run_engine(n, 6, 3, 2, |b| b.num_partitions(6));
    assert_eq!(got, expected);
}

#[test]
fn result_is_invariant_across_heuristics() {
    let baseline = run_engine(90, 5, 11, 2, |b| {
        b.num_partitions(6).heuristic(Heuristic::Sequential)
    });
    for h in Heuristic::ALL {
        let got = run_engine(90, 5, 11, 2, |b| b.num_partitions(6).heuristic(h));
        assert_eq!(got, baseline, "{h} changed the result graph");
    }
}

#[test]
fn result_is_invariant_across_partition_counts_and_partitioners() {
    let baseline = run_engine(80, 4, 5, 2, |b| b.num_partitions(2));
    for m in [4, 8, 16] {
        let got = run_engine(80, 4, 5, 2, |b| b.num_partitions(m));
        assert_eq!(got, baseline, "m={m} changed the result graph");
    }
    for kind in PartitionerKind::ALL {
        let got = run_engine(80, 4, 5, 2, |b| b.num_partitions(8).partitioner(kind));
        assert_eq!(got, baseline, "{kind} changed the result graph");
    }
}

#[test]
fn result_is_invariant_across_threads_and_slots() {
    let baseline = run_engine(100, 5, 7, 2, |b| b.num_partitions(5));
    for threads in [2, 4] {
        let got = run_engine(100, 5, 7, 2, |b| b.num_partitions(5).threads(threads));
        assert_eq!(got, baseline, "threads={threads} changed the result");
    }
    for slots in [3, 5] {
        let got = run_engine(100, 5, 7, 2, |b| b.num_partitions(5).cache_slots(slots));
        assert_eq!(got, baseline, "slots={slots} changed the result");
    }
}

#[test]
fn spill_threshold_does_not_change_the_result() {
    let baseline = run_engine(70, 4, 9, 2, |b| b.num_partitions(7));
    // A tiny threshold forces tuple-table spills on every bucket.
    let spilled = run_engine(70, 4, 9, 2, |b| b.num_partitions(7).spill_threshold(4));
    assert_eq!(spilled, baseline);
}

#[test]
fn reverse_join_matches_reference_reverse_join() {
    let n = 100;
    let profiles = workload(n, 13);
    let g0 = KnnGraph::random_init(n, 5, 13);
    let expected = reference_iteration(&g0, &profiles, &Measure::Cosine, 5, true);
    let got = run_engine(n, 5, 13, 1, |b| b.num_partitions(5).include_reverse(true));
    assert_eq!(got, expected);
}

#[test]
fn all_measures_run_end_to_end() {
    for measure in Measure::ALL {
        let n = 60;
        let profiles = workload(n, 17);
        let g0 = KnnGraph::random_init(n, 4, 17);
        let expected = reference_iteration(&g0, &profiles, &measure, 4, false);
        let config = EngineConfig::builder(n)
            .k(4)
            .num_partitions(4)
            .measure(measure)
            .seed(17)
            .build()
            .expect("config");
        let wd = WorkingDir::temp("itest_measures").expect("workdir");
        let mut engine = KnnEngine::with_initial_graph(config, g0, profiles, wd).expect("engine");
        engine.run_iteration().expect("iteration");
        assert_eq!(
            engine.graph(),
            &expected,
            "{measure} diverged from reference"
        );
        engine.into_working_dir().destroy().expect("cleanup");
    }
}

#[test]
fn converged_engine_approaches_brute_force_truth() {
    let n = 300;
    let profiles = workload(n, 21);
    let truth = brute_force_knn(&profiles, &Measure::Cosine, 8, 2);
    let config = EngineConfig::builder(n)
        .k(8)
        .num_partitions(8)
        .measure(Measure::Cosine)
        .include_reverse(true)
        .threads(2)
        .seed(21)
        .build()
        .expect("config");
    let wd = WorkingDir::temp("itest_recall").expect("workdir");
    let mut engine = KnnEngine::new(config, profiles, wd).expect("engine");
    engine.run_until_converged(0.01, 15).expect("convergence");
    let recall = recall_at_k(engine.graph(), &truth);
    assert!(
        recall.mean_recall > 0.9,
        "converged recall {:.3} too low",
        recall.mean_recall
    );
    engine.into_working_dir().destroy().expect("cleanup");
}
