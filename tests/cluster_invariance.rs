//! Acceptance bar for the `knn-cluster` locality layer: clustering
//! changes *placement and initialization*, never *results*.
//!
//! 1. The partitioner choice — cluster packing included — does not
//!    change the computed graph at all: one iteration is a pure
//!    function of `G(t)`, the profiles, the measure, and `K`.
//! 2. A cluster-configured engine (cluster partitioner + cluster-seeded
//!    `G(0)`) is deterministic across thread counts and shard counts,
//!    like every other configuration.
//! 3. Converged recall floors hold regardless of partitioner choice
//!    (the same floors `recall_regression.rs` pins for the default).
//! 4. `resume` round-trips the persisted cluster assignment.

use std::sync::Arc;

use ooc_knn::cluster::ClusterMethod;
use ooc_knn::core::metrics::IterationReport;
use ooc_knn::{
    brute_force_knn, recall_at_k, EngineConfig, KnnEngine, KnnGraph, MemBackend, PartitionerKind,
    ShardedEngine, StorageBackend, WorkloadConfig,
};

fn cluster_config(n: usize, k: usize, m: usize, seed: u64, threads: usize) -> EngineConfig {
    EngineConfig::builder(n)
        .k(k)
        .num_partitions(m)
        .partitioner(PartitionerKind::Cluster)
        .cluster_init(true)
        .threads(threads)
        .seed(seed)
        // Force real spill traffic so the locality path is exercised
        // out-of-core, not just in staging memory.
        .spill_threshold(64)
        .tuple_table_memory(Some(1024))
        .build()
        .expect("config")
}

/// The deterministic projection of a report (see
/// `parallel_equivalence.rs`).
fn deterministic_fields(r: &IterationReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.iteration,
        r.phase_io,
        r.cache,
        r.predicted,
        r.tuples,
        r.schedule_len,
        (r.sims_computed, r.sims_skipped, r.sims_pruned),
        r.accums_seeded,
        (r.bytes_spilled, r.spill_runs, r.merge_passes),
        r.updates_applied,
        (r.replication_cost, r.intra_partition_tuples),
        r.changed_fraction.to_bits(),
    )
}

/// Partition layout is an I/O concern: for a FIXED `G(0)`, every
/// partitioner — including the cluster packer — yields the same graph
/// after every iteration. Only the locality metrics may differ.
#[test]
fn partitioner_choice_never_changes_the_graph() {
    let n = 90;
    let workload = WorkloadConfig::communities().build(n, 17);
    let g0 = KnnGraph::random_init(n, 5, 17);
    let mut reference: Option<KnnGraph> = None;
    for kind in PartitionerKind::ALL {
        let config = EngineConfig::builder(n)
            .k(5)
            .num_partitions(6)
            .partitioner(kind)
            .measure(workload.measure)
            .seed(17)
            .build()
            .expect("config");
        let mut engine = KnnEngine::with_initial_graph_on(
            config,
            g0.clone(),
            workload.profiles.clone(),
            Arc::new(MemBackend::new()),
        )
        .expect("engine");
        for _ in 0..3 {
            engine.run_iteration().expect("iteration");
        }
        match &reference {
            None => reference = Some(engine.graph().clone()),
            Some(expected) => {
                assert_eq!(engine.graph(), expected, "{kind} changed the graph")
            }
        }
    }
}

/// A fully cluster-configured engine honors the determinism contract:
/// identical graphs and identical deterministic report fields at every
/// thread count and shard count.
#[test]
fn cluster_engine_is_thread_and_shard_invariant() {
    let n = 80;
    let mut runs: Vec<(String, KnnGraph, Vec<_>)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let workload = WorkloadConfig::communities().build(n, 23);
        let config = cluster_config(n, 5, 6, 23, threads);
        let mut engine = KnnEngine::in_memory(config, workload.profiles).expect("engine");
        let mut reports = Vec::new();
        for _ in 0..3 {
            reports.push(deterministic_fields(&engine.run_iteration().expect("iter")));
        }
        runs.push((
            format!("threads={threads}"),
            engine.graph().clone(),
            reports,
        ));
    }
    for shards in [1usize, 2, 3] {
        let workload = WorkloadConfig::communities().build(n, 23);
        let config = cluster_config(n, 5, 6, 23, 2);
        let mut engine =
            ShardedEngine::in_memory(config, workload.profiles, shards).expect("sharded engine");
        let mut reports = Vec::new();
        for _ in 0..3 {
            reports.push(deterministic_fields(
                &engine.run_iteration().expect("iter").report,
            ));
        }
        runs.push((format!("shards={shards}"), engine.graph().clone(), reports));
    }
    let (ref_name, ref_graph, ref_reports) = &runs[0];
    for (name, graph, reports) in &runs[1..] {
        assert_eq!(graph, ref_graph, "{name} diverged from {ref_name}");
        assert_eq!(reports, ref_reports, "{name} reports diverged");
    }
}

/// The `recall_regression.rs` floors, re-pinned under the cluster
/// partitioner with cluster-seeded initialization: locality buys I/O,
/// never recall.
fn converged_recall_clustered(workload: &WorkloadConfig, n: usize, k: usize, seed: u64) -> f64 {
    let built = workload.build(n, seed);
    let truth = brute_force_knn(&built.profiles, &built.measure, k, 4);
    let config = EngineConfig::builder(n)
        .k(k)
        .num_partitions(8)
        .partitioner(PartitionerKind::Cluster)
        .cluster_init(true)
        .measure(built.measure)
        .threads(4)
        .seed(seed)
        .build()
        .expect("config");
    let mut engine = KnnEngine::in_memory(config, built.profiles).expect("engine");
    let outcome = engine.run_until_converged(0.01, 20).expect("run");
    assert!(
        outcome.converged,
        "{} (cluster) did not converge (final change {:.4})",
        built.name, outcome.final_change_fraction
    );
    recall_at_k(engine.graph(), &truth).mean_recall
}

#[test]
fn recall_floor_on_clustered_ratings_with_cluster_partitioner() {
    let recall = converged_recall_clustered(&WorkloadConfig::recommender(), 400, 10, 42);
    assert!(
        recall >= 0.93,
        "mean recall@10 regressed to {recall:.4} (floor 0.93)"
    );
}

#[test]
fn recall_floor_on_zipf_tags_with_cluster_partitioner() {
    // Zipf sets have no planted communities — the pre-pass clusters
    // whatever structure the sketches expose, and recall must not pay
    // for it.
    let recall = converged_recall_clustered(&WorkloadConfig::tags(), 400, 10, 7);
    assert!(
        recall >= 0.80,
        "mean recall@10 regressed to {recall:.4} (floor 0.80)"
    );
}

/// The persisted cluster table survives resume: same labels, same
/// graph, and the resumed engine keeps iterating deterministically.
#[test]
fn resume_round_trips_the_cluster_assignment() {
    let n = 60;
    let workload = WorkloadConfig::communities().build(n, 31);
    let config = cluster_config(n, 4, 5, 31, 2);
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());

    let mut engine = KnnEngine::new_on(
        config.clone(),
        workload.profiles.clone(),
        Arc::clone(&backend),
    )
    .expect("engine");
    let labels = engine.clusters().expect("pre-pass ran").labels().to_vec();
    engine.run_iteration().expect("iter");
    let graph_after_1 = engine.graph().clone();
    drop(engine);

    let mut resumed = KnnEngine::resume_on(config.clone(), Arc::clone(&backend)).expect("resume");
    assert_eq!(resumed.iteration(), 1);
    assert_eq!(resumed.graph(), &graph_after_1);
    assert_eq!(
        resumed.clusters().expect("clusters reloaded").labels(),
        labels.as_slice(),
        "cluster table did not round-trip"
    );

    // A non-clustering config on the same backend still resumes: the
    // extra metadata keys and the cluster stream are simply unused (a
    // plain engine never reads them), and graph recovery is unchanged.
    let plain = EngineConfig::builder(n)
        .k(4)
        .num_partitions(5)
        .threads(2)
        .seed(31)
        .spill_threshold(64)
        .tuple_table_memory(Some(1024))
        .build()
        .expect("config");
    let plain_resume = KnnEngine::resume_on(plain, Arc::clone(&backend)).expect("plain resume");
    assert_eq!(plain_resume.graph(), &graph_after_1, "graph recovery broke");
    assert!(plain_resume.clusters().is_none());

    // A mismatched clustering config must be rejected at resume, like
    // any other metadata disagreement.
    let other = EngineConfig::builder(n)
        .k(4)
        .num_partitions(5)
        .partitioner(PartitionerKind::Cluster)
        .cluster_init(true)
        .cluster_method(ClusterMethod::RandomBuckets)
        .threads(2)
        .seed(31)
        .spill_threshold(64)
        .tuple_table_memory(Some(1024))
        .build()
        .expect("config");
    assert!(
        KnnEngine::resume_on(other, Arc::clone(&backend)).is_err(),
        "resume accepted a different cluster_method"
    );

    // The cluster-configured resume keeps iterating normally.
    resumed.run_iteration().expect("resumed iteration");
    assert_eq!(resumed.iteration(), 2);
}
