//! A miniature collaborative-filtering recommender on top of the
//! out-of-core KNN graph — the application domain the paper's
//! introduction motivates (ref. \[1\], recommender systems).
//!
//! Pipeline: synthetic clustered movie ratings → out-of-core KNN →
//! user-based collaborative filtering (recommend items your nearest
//! neighbors rated highly that you have not seen) → quality check
//! against the exact brute-force KNN graph.
//!
//! ```sh
//! cargo run --release --example movie_recommender
//! ```

use std::collections::HashMap;

use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::{
    brute_force_knn, recall_at_k, EngineConfig, ItemId, KnnEngine, Measure, UserId, WorkingDir,
};

const USERS: usize = 1500;
const K: usize = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Movies": 12 genres of 300 titles; every user rates mostly
    // within a favourite genre, plus a few random blockbusters.
    let config = ClusteredConfig {
        num_users: USERS,
        num_clusters: 12,
        items_per_cluster: 300,
        ratings_per_user: 40,
        noise_ratings: 8,
        noise_items: 400,
        seed: 2014,
    };
    let (ratings, genres) = clustered_profiles(config);
    println!(
        "{USERS} users, {} ratings total, 12 planted genres",
        ratings.total_entries()
    );

    // Build the KNN graph out of core.
    let engine_config = EngineConfig::builder(USERS)
        .k(K)
        .num_partitions(12)
        .measure(Measure::Cosine)
        .threads(2)
        .seed(2014)
        .build()?;
    let workdir = WorkingDir::temp("movie_recommender")?;
    let mut engine = KnnEngine::new(engine_config, ratings.clone(), workdir)?;
    let outcome = engine.run_until_converged(0.02, 10)?;
    println!(
        "KNN graph converged after {} iterations (change {:.2}%)",
        outcome.iterations_run,
        outcome.final_change_fraction * 100.0
    );

    // Quality: recall against the exact graph + genre purity.
    let truth = brute_force_knn(&ratings, &Measure::Cosine, K, 4);
    let recall = recall_at_k(engine.graph(), &truth);
    println!("recall@{K} vs brute force: {:.4}", recall.mean_recall);
    let mut same_genre = 0usize;
    let mut total = 0usize;
    for u in 0..USERS as u32 {
        for nb in engine.graph().neighbors(UserId::new(u)) {
            total += 1;
            if genres[u as usize] == genres[nb.id.index()] {
                same_genre += 1;
            }
        }
    }
    println!(
        "neighbor genre purity: {:.1}% (random would be ~8.3%)",
        same_genre as f64 / total as f64 * 100.0
    );

    // Recommend: for user 0, aggregate neighbors' ratings of unseen
    // movies, weighted by neighbor similarity.
    let target = UserId::new(0);
    let seen = ratings.get(target);
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for nb in engine.graph().neighbors(target) {
        let weight = nb.sim.max(0.0) as f64;
        for (item, rating) in ratings.get(nb.id).iter() {
            if seen.get(item).is_none() {
                *scores.entry(item.raw()).or_insert(0.0) += weight * rating as f64;
            }
        }
    }
    let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "\ntop-5 recommendations for {target} (genre {}):",
        genres[0]
    );
    for (item, score) in ranked.iter().take(5) {
        let genre = *item / 300;
        println!(
            "  movie {} (genre {genre}, score {score:.2})",
            ItemId::new(*item)
        );
    }

    engine.into_working_dir().destroy()?;
    Ok(())
}
