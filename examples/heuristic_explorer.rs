//! Interactive-ish exploration of PI-graph traversal heuristics: what
//! actually happens to the two memory slots as a schedule runs.
//!
//! Prints the step-by-step load/evict trace for a small PI graph, then
//! the cost table for each heuristic and slot count on a Table-1
//! replica — a compact way to build intuition for the paper's Table 1.
//!
//! ```sh
//! cargo run --release --example heuristic_explorer
//! ```

use ooc_knn::core::traversal::{simulate_schedule_ops, Heuristic};
use ooc_knn::store::SlotCache;
use ooc_knn::{PiGraph, Table1Dataset};
use std::convert::Infallible;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small PI graph: hub partition 0, a triangle 1-2-3, self-pair 4.
    let mut pi = PiGraph::new(5);
    for (i, j, w) in [
        (0, 1, 40),
        (0, 2, 10),
        (0, 3, 25),
        (1, 2, 5),
        (2, 3, 8),
        (4, 4, 12),
    ] {
        pi.add_bucket(i, j, w);
    }
    println!("PI graph: 5 partitions, pairs with tuple counts:");
    for ((i, j), w) in pi.iter_buckets() {
        println!("  (R{i} -> R{j}): {w} tuples");
    }

    for h in [
        Heuristic::Sequential,
        Heuristic::DegreeLowHigh,
        Heuristic::GreedyChain,
    ] {
        println!("\n=== {h} — step-by-step with 2 slots");
        let schedule = h.schedule(&pi);
        let mut cache: SlotCache<()> = SlotCache::new(2);
        for step in schedule.iter() {
            let mut events: Vec<String> = Vec::new();
            for (id, pinned) in [(step.a, None), (step.b, Some(step.a))] {
                if id == step.b && step.is_self() {
                    continue;
                }
                let resident_before = cache.contains(id);
                let (mut loaded, mut evicted) = (None, None);
                cache.ensure::<Infallible>(
                    id,
                    pinned,
                    |p| {
                        loaded = Some(p);
                        Ok(())
                    },
                    |p, _| {
                        evicted = Some(p);
                        Ok(())
                    },
                )?;
                if let Some(p) = evicted {
                    events.push(format!("evict R{p}"));
                }
                if let Some(p) = loaded {
                    events.push(format!("load R{p}"));
                }
                if resident_before {
                    events.push(format!("hit R{id}"));
                }
            }
            println!(
                "  process {step}: {:<24} resident: {:?}",
                events.join(", "),
                cache.resident()
            );
        }
        cache.flush(|p, _| {
            println!("  final flush: unload R{p}");
            Ok::<(), Infallible>(())
        })?;
        let c = cache.counters();
        println!(
            "  => {} loads + {} unloads = {} ops",
            c.loads,
            c.unloads,
            c.total_ops()
        );
    }

    // Full cost table on a real replica.
    println!("\n=== Wiki-Vote replica: ops by heuristic and slot count");
    let ds = Table1Dataset::WikiVote;
    let pi = PiGraph::from_network_shape(ds.paper_nodes(), &ds.generate(42));
    print!("{:<16}", "heuristic");
    for slots in [2usize, 3, 4, 8] {
        print!("  {:>10}", format!("{slots} slots"));
    }
    println!();
    for h in Heuristic::ALL {
        print!("{:<16}", h.to_string());
        for slots in [2usize, 3, 4, 8] {
            let ops = simulate_schedule_ops(&h.schedule(&pi), slots).total_ops();
            print!("  {ops:>10}");
        }
        println!();
    }
    println!("\n(the paper's Table-1 setting is the 2-slot column)");
    Ok(())
}
