//! Near-duplicate / related-document search with set profiles.
//!
//! Documents are modeled as sets of term ids with Zipf-distributed
//! popularity (a few stop-word-like terms appear everywhere, most
//! terms are rare). The KNN graph under Jaccard similarity then links
//! related documents; the example also contrasts measures on the same
//! data — a wrong measure (overlap) inflates similarity for documents
//! sharing only popular terms.
//!
//! ```sh
//! cargo run --release --example document_similarity
//! ```

use ooc_knn::sim::generators::{zipf_profiles, ZipfConfig};
use ooc_knn::{EngineConfig, KnnEngine, Measure, Profile, Similarity, UserId, WorkingDir};

const DOCS: usize = 1200;
const K: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Corpus: 1 200 documents of 30 terms over a 15 000-term
    // vocabulary with Zipf skew.
    let mut corpus = zipf_profiles(ZipfConfig {
        num_users: DOCS,
        num_items: 15_000,
        items_per_user: 30,
        skew: 1.05,
        seed: 99,
    });

    // Plant eight near-duplicate pairs so the search has known
    // answers: copy doc i's terms into doc i+600 with one edit.
    const PLANTED: u32 = 8;
    for i in 0..PLANTED {
        let src = corpus.get(UserId::new(i)).clone();
        let mut dup: Vec<u32> = src.iter().map(|(t, _)| t.raw()).collect();
        dup[0] = 14_900 + i; // one substituted term
        corpus.set(UserId::new(i + 600), Profile::from_items(dup)?);
    }

    let config = EngineConfig::builder(DOCS)
        .k(K)
        .num_partitions(8)
        .measure(Measure::Jaccard)
        .include_reverse(true)
        .seed(99)
        .build()?;
    let workdir = WorkingDir::temp("document_similarity")?;
    let mut engine = KnnEngine::new(config, corpus.clone(), workdir)?;
    engine.run_until_converged(0.02, 12)?;

    println!("nearest documents under Jaccard (KNN-graph search is approximate):");
    let mut found = 0u32;
    for i in 0..PLANTED {
        let doc = UserId::new(i);
        let best = engine.graph().neighbors(doc).first().copied();
        match best {
            Some(nb) => {
                let hit = nb.id == UserId::new(i + 600);
                found += hit as u32;
                println!(
                    "  doc {doc}: best match {} (jaccard {:.3}) — planted duplicate {} {}",
                    nb.id,
                    nb.sim,
                    i + 600,
                    if hit { "FOUND" } else { "missed" }
                );
            }
            None => println!("  doc {doc}: no neighbors"),
        }
    }
    println!("found {found}/{PLANTED} planted duplicates via the approximate KNN graph");

    // Measure comparison on one planted pair vs a random pair.
    let (a, dup, random) = (
        corpus.get(UserId::new(0)),
        corpus.get(UserId::new(600)),
        corpus.get(UserId::new(777)),
    );
    println!("\nmeasure comparison (doc0 vs planted duplicate | doc0 vs random):");
    for m in [
        Measure::Jaccard,
        Measure::Dice,
        Measure::Overlap,
        Measure::Cosine,
    ] {
        println!(
            "  {:<14} {:>8.3} | {:>8.3}",
            m.to_string(),
            m.score(a, dup),
            m.score(a, random)
        );
    }

    // TF-IDF: popular (stop-word-like) terms dominate raw cosine; the
    // re-weighting suppresses them and widens the duplicate/random gap.
    let df = ooc_knn::sim::tfidf::DocumentFrequencies::from_store(&corpus);
    let (wa, wdup, wrandom) = (df.reweight(a), df.reweight(dup), df.reweight(random));
    println!("\ncosine before/after tf-idf re-weighting:");
    println!(
        "  duplicate pair: {:.3} -> {:.3}",
        Measure::Cosine.score(a, dup),
        Measure::Cosine.score(&wa, &wdup)
    );
    println!(
        "  random pair:    {:.3} -> {:.3}",
        Measure::Cosine.score(a, random),
        Measure::Cosine.score(&wa, &wrandom)
    );

    engine.into_working_dir().destroy()?;
    Ok(())
}
