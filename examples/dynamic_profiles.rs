//! Dynamic profiles — the feature GraphChi/X-Stream cannot express and
//! the reason the paper's phase 5 exists.
//!
//! A user's taste shifts mid-computation. The example walks through
//! what actually happens in the five-phase engine:
//!
//! 1. **Lazy visibility** — the queued update is invisible to the
//!    iteration in flight and lands in `P(t+1)` at the boundary.
//! 2. **Re-scoring** — the next iteration re-scores the user's
//!    neighborhood against the new profile: the old neighbors' sims
//!    collapse to zero.
//! 3. **Exploration death** — a *converged* KNN graph only proposes
//!    2-hop candidates, which all live in the old cluster, so the user
//!    is stranded: KNN-graph iteration exploits, it does not explore.
//! 4. **Stratified warm restart** — re-seeding just that user's
//!    out-edges with a spread of users re-opens exploration and the
//!    neighborhood migrates to the new cluster within an iteration.
//!
//! ```sh
//! cargo run --release --example dynamic_profiles
//! ```

use ooc_knn::sim::generators::{clustered_profiles, ClusteredConfig};
use ooc_knn::sim::DeltaOp;
use ooc_knn::{
    EngineConfig, KnnEngine, KnnGraph, Measure, Neighbor, Profile, ProfileDelta, UserId, WorkingDir,
};

const USERS: usize = 800;
const K: usize = 8;

/// Fraction of `user`'s neighbors whose cluster is `cluster`.
fn cluster_share(graph: &KnnGraph, labels: &[u32], user: UserId, cluster: u32) -> f64 {
    let neighbors = graph.neighbors(user);
    if neighbors.is_empty() {
        return 0.0;
    }
    let hits = neighbors
        .iter()
        .filter(|nb| labels[nb.id.index()] == cluster)
        .count();
    hits as f64 / neighbors.len() as f64
}

/// The mover's replacement profile: 35 ratings from `cluster`'s block.
fn shifted_profile(cluster: u32) -> Profile {
    let base = cluster * 250;
    Profile::from_unsorted_pairs((0..35).map(|i| (base + i * 7, 4.0f32)).collect())
        .expect("valid profile")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ClusteredConfig {
        num_users: USERS,
        num_clusters: 4,
        items_per_cluster: 250,
        ratings_per_user: 35,
        noise_ratings: 3,
        noise_items: 200,
        seed: 7,
    };
    let (profiles, labels) = clustered_profiles(cfg);
    let mover = UserId::new(0);
    let old_cluster = labels[mover.index()];
    let new_cluster = (old_cluster + 1) % 4;
    println!(
        "user {mover} starts in cluster {old_cluster}; its taste will move to {new_cluster}\n"
    );

    let config = EngineConfig::builder(USERS)
        .k(K)
        .num_partitions(8)
        .measure(Measure::Cosine)
        .include_reverse(true)
        .seed(7)
        .build()?;
    let workdir = WorkingDir::temp("dynamic_profiles")?;
    let mut engine = KnnEngine::new(config.clone(), profiles.clone(), workdir)?;
    engine.run_until_converged(0.01, 10)?;
    let avg_sim = |g: &KnnGraph| {
        let ns = g.neighbors(mover);
        ns.iter().map(|n| n.sim as f64).sum::<f64>() / ns.len().max(1) as f64
    };
    println!(
        "converged: {:.0}% of {mover}'s neighbors in cluster {old_cluster}, avg sim {:.3}",
        cluster_share(engine.graph(), &labels, mover, old_cluster) * 100.0,
        avg_sim(engine.graph())
    );

    // 1) Queue the taste shift; it must NOT affect the iteration in
    //    flight (lazy queue semantics).
    engine.queue_update(&ProfileDelta::new(
        mover,
        DeltaOp::Replace(shifted_profile(new_cluster)),
    ))?;
    let report = engine.run_iteration()?;
    println!(
        "\niteration with queued shift: computed on the OLD profile, {} update applied at the boundary",
        report.updates_applied
    );
    println!(
        "  neighbors still cluster {old_cluster} ({:.0}%), avg sim {:.3}",
        cluster_share(engine.graph(), &labels, mover, old_cluster) * 100.0,
        avg_sim(engine.graph())
    );

    // 2) + 3) The next iterations re-score against the new profile:
    //    sims collapse, but no new-cluster candidate ever appears —
    //    the converged graph has no exploration path.
    for _ in 0..2 {
        engine.run_iteration()?;
    }
    println!(
        "\ntwo iterations later: {:.0}% old cluster, {:.0}% new cluster, avg sim {:.3}",
        cluster_share(engine.graph(), &labels, mover, old_cluster) * 100.0,
        cluster_share(engine.graph(), &labels, mover, new_cluster) * 100.0,
        avg_sim(engine.graph())
    );
    println!("  → re-scored to ~zero similarity, but stranded: 2-hop candidates only exploit");

    // 4) Stratified warm restart: re-seed the mover's out-edges with a
    //    deterministic spread of users (ids 1..=K hit every cluster
    //    under the modulo labeling), keep everyone else's lists.
    let mut warm = engine.graph().clone();
    let spread: Vec<Neighbor> = (1..=K as u32)
        .map(|u| Neighbor::unscored(UserId::new(u)))
        .collect();
    warm.set_neighbors(mover, spread)?;
    let mut patched = profiles.clone();
    patched.set(mover, shifted_profile(new_cluster));
    let workdir = WorkingDir::temp("dynamic_profiles_restart")?;
    let mut restarted = KnnEngine::with_initial_graph(config, warm, patched, workdir)?;
    for i in 1..=3 {
        restarted.run_iteration()?;
        println!(
            "after warm restart +{i}: {:.0}% old cluster, {:.0}% new cluster, avg sim {:.3}",
            cluster_share(restarted.graph(), &labels, mover, old_cluster) * 100.0,
            cluster_share(restarted.graph(), &labels, mover, new_cluster) * 100.0,
            avg_sim(restarted.graph())
        );
    }

    engine.into_working_dir().destroy()?;
    restarted.into_working_dir().destroy()?;
    Ok(())
}
