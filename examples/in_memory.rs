//! Fully in-memory quick start: the same five-phase engine, zero
//! filesystem.
//!
//! The engine is written against the `StorageBackend` trait, so the
//! out-of-core disk layout is just one implementation. When the
//! profile set fits in RAM, `KnnEngine::in_memory` runs the identical
//! algorithm (and the identical record codec) against byte buffers —
//! same graphs, measurably faster iterations, nothing to clean up.
//!
//! ```sh
//! cargo run --release --example in_memory
//! ```

use ooc_knn::serve::{spawn, RefineOptions};
use ooc_knn::{EngineConfig, KnnEngine, UserId, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic recommender workload: 2 000 users with planted
    // cluster structure (stands in for real rating data).
    let workload = WorkloadConfig::recommender().build(2000, 42);
    println!("workload: {} ({})", workload.name, workload.measure);

    // Engine: K=10 neighbors, 16 partitions — all resident in RAM.
    // No working directory anywhere in this program.
    let config = EngineConfig::builder(2000)
        .k(10)
        .num_partitions(16)
        .measure(workload.measure)
        .threads(2)
        .seed(42)
        .build()?;
    let mut engine = KnnEngine::in_memory(config, workload.profiles)?;
    assert!(engine.working_dir().is_none());

    // Iterate until fewer than 2% of KNN edges change.
    let outcome = engine.run_until_converged(0.02, 10)?;
    println!(
        "converged: {} after {} iterations (final change {:.2}%)",
        outcome.converged,
        outcome.iterations_run,
        outcome.final_change_fraction * 100.0
    );

    // Inspect one user's nearest neighbors.
    let user = UserId::new(0);
    println!("nearest neighbors of {user}:");
    for nb in engine.graph().neighbors(user) {
        println!("  {} (similarity {:.4})", nb.id, nb.sim);
    }

    // The backend meters its own I/O, so in-memory runs report the
    // same counters a disk run would.
    let io = engine.io_snapshot();
    println!(
        "\nbackend traffic: {:.1} MB read, {:.1} MB written (all RAM)",
        io.bytes_read as f64 / 1e6,
        io.bytes_written as f64 / 1e6
    );

    // The serving layer is backend-agnostic too: an in-memory engine
    // serves queries while refining, exactly like a disk-backed one.
    let (service, refine) = spawn(engine, RefineOptions::default())?;
    let top = service.neighbors(user)?;
    println!("served top-{} for {user} from a live snapshot", top.len());
    refine.stop()?;
    Ok(())
}
