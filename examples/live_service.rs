//! Live service: answer top-K queries *while* the engine refines, and
//! stream in a profile update that surfaces in a later snapshot.
//!
//! ```sh
//! cargo run --release --example live_service
//! ```

use std::time::{Duration, Instant};

use ooc_knn::serve::{spawn, RefineOptions};
use ooc_knn::sim::{ItemId, Profile, ProfileDelta};
use ooc_knn::{EngineConfig, KnnEngine, UserId, WorkingDir, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1 500-user recommender workload and the usual batch engine.
    let n = 1500;
    let workload = WorkloadConfig::recommender().build(n, 11);
    let config = EngineConfig::builder(n)
        .k(8)
        .num_partitions(8)
        .measure(workload.measure)
        .seed(11)
        .build()?;
    let engine = KnnEngine::new(config, workload.profiles, WorkingDir::temp("live_service")?)?;

    // Hand the engine to the serving layer: refinement now runs on a
    // background thread and every iteration is published atomically.
    let options = RefineOptions {
        convergence_threshold: Some(0.02),
        max_iterations: Some(8),
        idle_park: Duration::from_millis(5),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options)?;

    // 1. Query during the in-flight first iteration: epoch 0 serves
    //    the random initial graph G(0) without waiting for phase work.
    let me = UserId::new(0);
    let first = service.neighbors(me)?;
    println!(
        "epoch {}: {} neighbors of {me} served mid-refinement",
        service.snapshot().epoch(),
        first.len()
    );

    // 2. Queue a live profile update: user 7 suddenly loves item 9999.
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(9_999), 5.0);
    service.submit_update(ProfileDelta::replace(UserId::new(7), fresh.clone()))?;

    // 3. Keep querying while refinement publishes new generations.
    let started = Instant::now();
    let mut last_epoch = service.snapshot().epoch();
    while started.elapsed() < Duration::from_secs(60) {
        let snapshot = service.snapshot();
        if snapshot.epoch() != last_epoch {
            last_epoch = snapshot.epoch();
            println!(
                "epoch {}: iteration {} published (Δ = {:.2}%), top neighbor of {me}: {:?}",
                snapshot.epoch(),
                snapshot.iteration(),
                snapshot.changed_fraction() * 100.0,
                snapshot.neighbors(me)?.first().map(|nb| nb.id)
            );
        }
        // The queued update becomes visible in a later snapshot's
        // profile view — the paper's lazy phase-5 semantics, online.
        if snapshot.profiles().get(UserId::new(7)) == &fresh {
            println!(
                "epoch {}: update to user 7 is now served (observed after {:?})",
                snapshot.epoch(),
                started.elapsed()
            );
            break;
        }
        refine.wait_for_epoch(last_epoch + 1, Duration::from_millis(250));
    }

    // 4. Ad-hoc query: a brand-new visitor profile, matched against
    //    the current snapshot without belonging to the graph at all.
    let visitor = service.snapshot().profiles().get(UserId::new(3)).clone();
    let matches = service.query_profile(&visitor, 5).expect("finite query");
    println!(
        "visitor query: {} matches, best {:?}",
        matches.len(),
        matches.first().map(|nb| nb.id)
    );

    let stats = service.stats();
    println!(
        "served {} neighbor queries, {} profile queries, {} updates ({} drained), final epoch {}",
        stats.neighbor_queries,
        stats.profile_queries,
        stats.updates_submitted,
        stats.updates_drained,
        stats.snapshot_epoch
    );

    // 5. Stop serving and recover the engine for offline work.
    let engine = refine.stop()?;
    println!("stopped at iteration {}", engine.iteration());
    engine.into_working_dir().destroy()?;
    Ok(())
}
