//! Storage scrub: verify a working store's on-disk invariants.
//!
//! The engine's `verify()` walks every committed stream — the commit
//! record, metadata, the assignment, per-partition profiles and KNN
//! slices, the update log — and cross-checks them against each other:
//! CRC framing intact, every user assigned exactly once, profiles and
//! neighbor slices housed in their assigned partitions, no staged
//! backups or spill scratch left at rest. A crash, a torn write, or a
//! bad disk shows up here as a finding instead of a wrong answer
//! later.
//!
//! The demo runs a few iterations, scrubs clean, then corrupts a
//! stream in place and scrubs again to show detection.
//!
//! ```sh
//! cargo run --release --example scrub
//! ```

use std::sync::Arc;

use ooc_knn::store::{MemBackend, StorageBackend, StreamId};
use ooc_knn::{EngineConfig, KnnEngine, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::recommender().build(2000, 42);
    let config = EngineConfig::builder(2000)
        .k(10)
        .num_partitions(8)
        .measure(workload.measure)
        .seed(42)
        .build()?;

    // Any backend works — the scrub goes through the same trait the
    // engine writes through. Swap in `KnnEngine::resume` on a real
    // working directory to scrub an existing on-disk store.
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut engine = KnnEngine::new_on(config, workload.profiles, Arc::clone(&backend))?;
    for _ in 0..3 {
        engine.run_iteration()?;
    }

    let report = engine.verify()?;
    println!("after 3 iterations: {report}");
    assert!(report.is_clean());

    // Corrupt one profile stream's framing in place, the way a torn
    // sector would, and scrub again.
    backend.write_raw(StreamId::Profiles(0), b"torn sector")?;
    let report = engine.verify()?;
    println!("after corrupting {}: {report}", StreamId::Profiles(0));
    assert!(!report.is_clean());

    Ok(())
}
