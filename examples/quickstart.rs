//! Quickstart: build an out-of-core KNN graph for 2 000 users in a few
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ooc_knn::{EngineConfig, KnnEngine, UserId, WorkingDir, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic recommender workload: 2 000 users with planted
    // cluster structure (stands in for real rating data).
    let workload = WorkloadConfig::recommender().build(2000, 42);
    println!("workload: {} ({})", workload.name, workload.measure);

    // Engine: K=10 neighbors, 16 partitions on disk, 2 resident.
    let config = EngineConfig::builder(2000)
        .k(10)
        .num_partitions(16)
        .measure(workload.measure)
        .threads(2)
        .seed(42)
        .build()?;
    let workdir = WorkingDir::temp("quickstart")?;
    let mut engine = KnnEngine::new(config, workload.profiles, workdir)?;

    // Iterate until fewer than 2% of KNN edges change.
    let outcome = engine.run_until_converged(0.02, 10)?;
    println!(
        "converged: {} after {} iterations (final change {:.2}%)",
        outcome.converged,
        outcome.iterations_run,
        outcome.final_change_fraction * 100.0
    );

    // Inspect one user's nearest neighbors.
    let user = UserId::new(0);
    println!("nearest neighbors of {user}:");
    for nb in engine.graph().neighbors(user) {
        println!("  {} (similarity {:.4})", nb.id, nb.sim);
    }

    // Per-iteration cost summary.
    if let Some(last) = engine.reports().last() {
        println!("\nlast iteration cost:\n{last}");
    }

    engine.into_working_dir().destroy()?;
    Ok(())
}
